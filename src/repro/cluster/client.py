"""Client side of the cluster protocol: shard handles and fleet fan-out.

:class:`RemoteShard` is the unit the serve layer actually executes
through: one column shard bound to one endpoint, with

* lazy connect + HELLO/version handshake + LOAD(digest) on first use
  (and again after every reconnect — connection state is the only
  server-side state);
* per-request timeouts (socket-level, covering connect, send and the
  full response);
* lazy fault synchronization: the shard's current override schedule is
  diffed against what the server last acknowledged, and a FAULT frame
  is sent only when it changed — steady-state traffic pays zero fault
  frames, a campaign's inject/revert cycle pays exactly two;
* **one reconnect-retry**: a transport failure tears the connection
  down and retries once on a fresh connection; a second failure marks
  the shard *unhealthy* and raises :class:`RemoteShardError`, which the
  sharded executor treats as "fall back to local execution";
* **automatic revival**: an unhealthy shard fails fast (no timeout per
  batch) only until its jittered-backoff deadline
  (:class:`repro.cluster.health.ProbeState`) passes — the next batch
  after that spends a *single* connection attempt as a revival probe,
  and success promotes the shard straight back to remote serving.
  :meth:`RemoteShard.revive` remains as the manual fast path: it clears
  the backoff schedule so the very next call probes immediately.

:class:`ClusterClient` maps shard indices onto an endpoint list
(round-robin when there are more shards than hosts) and offers
fleet-level stats probes.  It holds no sockets itself; every
:class:`RemoteShard` owns exactly one.
"""

from __future__ import annotations

import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

import numpy as np

from repro.cluster.health import BackoffPolicy, ProbeState
from repro.cluster.protocol import (
    EMPTY_OVERRIDES,
    ERR_AUTH,
    ERR_EXPIRED,
    ERR_PROTOCOL,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    FrameType,
    ProtocolError,
    RemoteFault,
    auth_response,
    batch_frame,
    encode_frame,
    encode_overrides,
    frame_array,
    recv_frame,
    send_frame,
)
from repro.serve.admission import DeadlineExceeded
from repro.serve.telemetry import LatencyWindow

__all__ = ["RemoteShardError", "RemoteShard", "ClusterClient"]

#: Failures of the link itself, as opposed to a server that answered.
#: One tuple so every request path (execute, stats, probe, warm) tears
#: down and books health identically.
_TRANSPORT_ERRORS = (OSError, ConnectionError, ProtocolError, EOFError)


class RemoteShardError(RuntimeError):
    """This shard cannot currently be served remotely (fall back local)."""


def _overrides_token(overrides: tuple[list, dict]) -> tuple:
    """Hashable normal form for change detection."""
    stuck_out, carry = overrides
    return (
        tuple((int(i), int(v)) for i, v in stuck_out),
        tuple(
            (kind, tuple((int(s), int(v)) for s, v in carry.get(kind, ())))
            for kind in ("add", "sub", "neg")
        ),
    )


class _Connection:
    """One socket speaking the cluster protocol, request/response."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float,
        auth_secret: str | None = None,
    ) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout_s)
        self.sock.settimeout(timeout_s)
        try:
            send_frame(self.sock, FrameType.HELLO, {"version": PROTOCOL_VERSION})
            ftype, meta, _ = recv_frame(self.sock)
            if ftype is FrameType.ERROR:
                raise RemoteFault(
                    str(meta.get("error", "error")), str(meta.get("message", ""))
                )
            if ftype is not FrameType.HELLO or meta.get("version") not in SUPPORTED_VERSIONS:
                raise ProtocolError(f"unexpected handshake reply {ftype.name}")
            challenge = meta.get("challenge")
            if challenge is not None:
                # The server demands the shared-secret handshake.  A
                # client without the secret fails *here*, loudly, with
                # the same stable token the server would use — not with
                # a confusing mid-request refusal later.
                if auth_secret is None:
                    raise RemoteFault(
                        ERR_AUTH,
                        f"{host}:{port} requires a shared secret "
                        "(pass auth_secret=)",
                    )
                send_frame(
                    self.sock,
                    FrameType.AUTH,
                    {"mac": auth_response(auth_secret, str(challenge))},
                )
                ftype, meta, _ = recv_frame(self.sock)
                if ftype is FrameType.ERROR:
                    raise RemoteFault(
                        str(meta.get("error", "error")),
                        str(meta.get("message", "")),
                    )
                if ftype is not FrameType.OK:
                    raise ProtocolError(
                        f"unexpected auth reply {ftype.name}"
                    )
        except BaseException:
            self.sock.close()
            raise

    def request(
        self, frame: bytes
    ) -> tuple[FrameType, dict[str, Any], bytes]:
        """Send one frame, return the (non-ERROR) reply.

        ERROR replies raise :class:`RemoteFault` — the connection itself
        is still good (the server answered), so callers must not treat
        it as a transport failure.
        """
        self.sock.sendall(frame)
        ftype, meta, blob = recv_frame(self.sock)
        if ftype is FrameType.ERROR:
            raise RemoteFault(
                str(meta.get("error", "error")), str(meta.get("message", ""))
            )
        return ftype, meta, blob

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class RemoteShard:
    """One column shard served over one endpoint (see module docstring).

    ``key_meta`` is the LOAD frame body: the shard piece's compile key
    (content digest + options), its column range, and the expected plan
    fingerprint — everything the server needs to resolve the kernel
    from the shared store, and nothing it could execute unverified.
    """

    def __init__(
        self,
        host: str,
        port: int,
        key_meta: dict[str, Any],
        timeout_s: float = 5.0,
        probe_backoff: BackoffPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
        recorder: Any | None = None,
        auth_secret: str | None = None,
        trip_threshold: int = 1,
    ) -> None:
        if trip_threshold < 1:
            raise ValueError(
                f"trip_threshold must be >= 1, got {trip_threshold}"
            )
        self.host = host
        self.port = int(port)
        self.key_meta = dict(key_meta)
        self.timeout_s = float(timeout_s)
        self.auth_secret = auth_secret
        # Circuit breaker: the link must fail ``trip_threshold``
        # *consecutive* requests (each already retried once on a fresh
        # connection) before it is marked unhealthy — i.e. before the
        # breaker opens and traffic stops touching the network.  The
        # default of 1 is the historical behavior: one exhausted request
        # trips immediately.  Higher values tolerate isolated blips
        # (each failed request still falls back locally) without
        # abandoning the link.
        self.trip_threshold = int(trip_threshold)
        self._failure_streak = 0
        self.healthy = True
        # Optional FlightRecorder: health transitions on this link are
        # exactly the events an operator reads after an incident.
        self.recorder = recorder
        self.probe_state = ProbeState(probe_backoff, clock)
        self.rtt = LatencyWindow(1024)
        self.remote_calls = 0
        # Batches the executor served locally because this link was down;
        # incremented by the sharded executor's fallback path.
        self.local_fallbacks = 0
        self.load_info: dict[str, Any] | None = None
        self._conn: _Connection | None = None
        self._synced: tuple | None = None
        # One request in flight per connection: the protocol is strict
        # request/response, and the RTT window mutates under this too.
        self._lock = threading.Lock()

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def breaker_state(self) -> str:
        """This link's circuit-breaker state, in the classic vocabulary.

        ``"closed"`` — healthy, traffic flows remotely.  ``"open"`` —
        tripped; every batch fails fast to local fallback without
        touching the network.  ``"half_open"`` — the backoff deadline
        has passed, so the next batch is spent as a single revival
        probe (success re-closes the breaker, failure re-opens it with
        a longer backoff).  The states are a reading of the existing
        ``healthy`` flag + :class:`~repro.cluster.health.ProbeState`
        machinery, not a separate state machine that could disagree
        with it.
        """
        if self.healthy:
            return "closed"
        return "half_open" if self.probe_state.due() else "open"

    # -- connection management ----------------------------------------------

    def _ensure(self) -> _Connection:
        if self._conn is None:
            conn = _Connection(
                self.host, self.port, self.timeout_s, auth_secret=self.auth_secret
            )
            try:
                _, meta, _ = conn.request(
                    encode_frame(FrameType.LOAD, self.key_meta)
                )
            except BaseException:
                conn.close()
                raise
            self.load_info = meta
            self._conn = conn
            self._synced = _overrides_token(EMPTY_OVERRIDES)
        return self._conn

    def _drop(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        self._synced = None

    def warm(self) -> bool:
        """Best-effort connect + LOAD now (deploy-time warmup).

        Transport failures are swallowed — the host may simply not be
        up yet, and the execute path has its own retry-then-fallback —
        but a server that *answers* with a refusal (unknown digest,
        fingerprint mismatch) raises :class:`RemoteFault`: that is a
        store misconfiguration worth failing the deploy over.
        """
        with self._lock:
            try:
                self._ensure()
                return True
            except RemoteFault:
                self._drop()
                raise
            except (OSError, ConnectionError, ProtocolError, EOFError):
                self._drop()
                return False

    def revive(self) -> None:
        """Manual fast path: clear the unhealthy flag *and* the backoff
        schedule so the very next call probes the host immediately."""
        with self._lock:
            self.healthy = True
            self._failure_streak = 0
            self.probe_state.reset()

    def probe_due(self) -> bool:
        """True when an unhealthy link's backoff deadline has passed."""
        return self.probe_state.due()

    def probe(self) -> bool:
        """One explicit revival attempt (connect + HELLO + LOAD).

        Respects the backoff schedule — inside the window it returns
        ``False`` without touching the network.  Success promotes the
        shard back to healthy; failure grows the backoff.  Already
        healthy is trivially ``True``.  Driven by
        :class:`repro.cluster.health.HealthProber` for idle fleets;
        execute traffic performs the same probe implicitly.
        """
        with self._lock:
            if self.healthy:
                return True
            if not self.probe_state.due():
                return False
            self.probe_state.note_probe()
            try:
                self._ensure()
            except RemoteFault as exc:
                self._drop()
                self.probe_state.note_failure(f"LOAD refused: {exc}")
                self._record("probe_failed", error=f"LOAD refused: {exc}")
                return False
            except _TRANSPORT_ERRORS as exc:
                self._drop()
                self.probe_state.note_failure(str(exc))
                self._record("probe_failed", error=str(exc))
                return False
            self.healthy = True
            self._failure_streak = 0
            self.probe_state.note_success(revived=True)
            self._record("shard_revived", via="probe")
            return True

    def close(self) -> None:
        with self._lock:
            self._drop()

    # -- request paths --------------------------------------------------------

    def _record(self, kind: str, **fields: Any) -> None:
        if self.recorder is not None:
            self.recorder.record(kind, endpoint=self.endpoint, **fields)

    def _mark_unhealthy(self, error: str) -> None:
        self.healthy = False
        self.probe_state.note_failure(error)
        self._record("shard_unhealthy", error=error)

    def _run_request(self, fn: Callable[[_Connection], Any]) -> Any:
        """The shared request skeleton: ensure-connection, retry once,
        book health — ``fn(conn)`` performs the actual frame exchange.

        A healthy link gets the usual two attempts.  An unhealthy link
        whose backoff deadline has passed gets exactly *one* — this call
        doubles as the revival probe, and success flips the shard back
        to healthy; inside the backoff window it fails fast without
        touching the network.  Callers hold ``self._lock``.
        """
        was_healthy = self.healthy
        if not was_healthy:
            if not self.probe_state.due():
                raise RemoteShardError(f"{self.endpoint} is marked unhealthy")
            self.probe_state.note_probe()
        attempts = 2 if was_healthy else 1
        last_exc: Exception | None = None
        for _ in range(attempts):
            try:
                conn = self._ensure()
            except RemoteFault as exc:
                # The server answered the (re-)LOAD with a refusal —
                # e.g. a bounded store evicted this kernel.  Remote
                # service cannot resume until the store is refilled,
                # but the batch must not fail: fall back locally.
                self._drop()
                self._failure_streak += 1
                self._mark_unhealthy(f"LOAD refused: {exc}")
                raise RemoteShardError(
                    f"{self.endpoint} refused LOAD ({exc}); serving locally"
                ) from exc
            except _TRANSPORT_ERRORS as exc:
                last_exc = exc
                self._drop()
                continue
            try:
                result = fn(conn)
            except RemoteFault as exc:
                if exc.token == ERR_PROTOCOL:
                    # The server judged our frame malformed — but this
                    # client only sends well-formed frames, so the bytes
                    # were damaged in flight.  Wire corruption is a link
                    # problem: retry on a fresh connection (and fall
                    # back locally if that fails too), never surface a
                    # corrupted execution as an application error.
                    last_exc = exc
                    self._drop()
                    continue
                # The link is fine — the server answered, refusing
                # *this request* (bad engine, unknown kernel).  An
                # application error the caller must see.
                self._failure_streak = 0
                raise
            except _TRANSPORT_ERRORS as exc:
                last_exc = exc
                self._drop()
                continue
            self._failure_streak = 0
            if not was_healthy:
                self.healthy = True
                self.probe_state.note_success(revived=True)
                self._record("shard_revived", via="traffic")
            return result
        self._failure_streak += 1
        if was_healthy and self._failure_streak < self.trip_threshold:
            # Below the breaker's trip threshold: this batch falls back
            # locally, but the link stays "closed" — the next request
            # gets fresh attempts instead of waiting out a backoff.
            raise RemoteShardError(
                f"{self.endpoint} failed twice ({last_exc}); serving "
                f"locally (breaker closed, streak "
                f"{self._failure_streak}/{self.trip_threshold})"
            ) from last_exc
        self._mark_unhealthy(str(last_exc))
        failure = "failed twice" if attempts == 2 else "failed its revival probe"
        raise RemoteShardError(
            f"{self.endpoint} {failure} ({last_exc}); serving locally"
        ) from last_exc

    def execute(
        self,
        batch: np.ndarray,
        engine: str,
        overrides: tuple[list, dict] | None = None,
        trace: dict[str, Any] | None = None,
        deadline_s: float | None = None,
    ) -> tuple[np.ndarray, str, float, list[dict[str, Any]]]:
        """One batch through the remote shard;
        ``(columns, engine, busy_s, spans)``.

        ``trace`` is the optional v3 trace context
        (``{"trace_id", "span_id"}``) stamped onto the EXECUTE frame;
        ``spans`` is whatever server-side span records the RESULT
        carried back (empty against an untraced request or a v2
        server).  Propagation rides the same frame as the batch, so
        every retry re-sends the context with the batch it belongs to.

        ``deadline_s`` is the batch's remaining deadline budget,
        stamped onto the EXECUTE meta so the server can skip work the
        clients have already abandoned.  A server ``"expired"`` refusal
        surfaces as :class:`~repro.serve.admission.DeadlineExceeded` —
        *not* :class:`RemoteShardError` — because falling back locally
        would just perform the abandoned work more slowly; the link
        itself stays healthy.

        Synchronizes ``overrides`` (the shard's current live-fault
        schedule) before the batch when it changed, retries exactly once
        on a fresh connection after a transport failure, and marks the
        shard unhealthy — raising :class:`RemoteShardError`, the
        executor's fall-back-locally signal — when the retry fails too,
        *or* when a (re-)LOAD is refused (a bounded store may have
        evicted the kernel mid-service; the batch must still succeed).
        A :class:`RemoteFault` answering the EXECUTE itself is raised
        as-is: the link is healthy and the request was wrong — an
        application error the caller must see.

        The fault-sync token (``self._synced``) is committed only after
        the server's OK: a FAULT acknowledged on a connection that then
        dies is forgotten with the connection (:meth:`_drop` nulls the
        token, :meth:`_ensure` resets it to the fresh connection's
        empty schedule), so every retry re-diffs and re-sends — the
        override schedule can never be silently lost across reconnects.
        """
        wanted = _overrides_token(overrides if overrides is not None else EMPTY_OVERRIDES)

        def run(conn: _Connection) -> tuple[np.ndarray, str, float, list]:
            if wanted != self._synced:
                if wanted == _overrides_token(EMPTY_OVERRIDES):
                    conn.request(
                        encode_frame(FrameType.FAULT, {"action": "clear"})
                    )
                else:
                    meta = {"action": "set"}
                    meta.update(encode_overrides(overrides))
                    conn.request(encode_frame(FrameType.FAULT, meta))
                self._synced = wanted
                self._record(
                    "fault_sync",
                    active=wanted != _overrides_token(EMPTY_OVERRIDES),
                )
            start = time.perf_counter()
            _, meta, blob = conn.request(
                batch_frame(batch, engine, trace=trace, deadline_s=deadline_s)
            )
            self.rtt.record(time.perf_counter() - start)
            self.remote_calls += 1
            spans = meta.get("spans")
            return (
                frame_array(meta, blob),
                str(meta.get("engine", engine)),
                float(meta.get("busy_s", 0.0)),
                spans if isinstance(spans, list) else [],
            )

        with self._lock:
            try:
                return self._run_request(run)
            except RemoteFault as exc:
                if exc.token == ERR_EXPIRED:
                    raise DeadlineExceeded(str(exc)) from exc
                raise

    def stats(self) -> dict[str, Any]:
        """The server's STATS reply.

        Same failure semantics as :meth:`execute`: transport failures
        tear the connection down, retry once, and mark the shard
        unhealthy (raising :class:`RemoteShardError`) when the retry
        fails too — a dead host degrades telemetry collection exactly
        like it degrades serving, instead of wedging it with raw socket
        errors on a connection nobody tears down.
        """

        def run(conn: _Connection) -> dict[str, Any]:
            _, meta, _ = conn.request(encode_frame(FrameType.STATS, {}))
            return meta.get("stats", {})

        with self._lock:
            return self._run_request(run)

    def telemetry(self) -> dict[str, Any]:
        """Client-side view of this shard link for utilization reports."""
        return {
            "endpoint": self.endpoint,
            "healthy": self.healthy,
            "remote_calls": self.remote_calls,
            "local_fallbacks": self.local_fallbacks,
            "rtt_s": self.rtt.summary(),
            "probe": self.probe_state.telemetry(),
            "breaker": {
                "state": self.breaker_state,
                "trip_threshold": self.trip_threshold,
                "failure_streak": self._failure_streak,
            },
        }


class ClusterClient:
    """Map column shards onto a fleet of endpoints.

    Args:
        endpoints: ``[(host, port), ...]`` — one per shard server.
            Shards are assigned round-robin (shard ``k`` to endpoint
            ``k % len(endpoints)``), so fewer hosts than shards simply
            multiplexes connections onto servers.
        timeout_s: per-request socket timeout for every shard handle.
        probe_backoff: revival backoff policy for every shard handle
            (``None`` — each handle gets the default
            :class:`~repro.cluster.health.BackoffPolicy`).  Benchmarks
            and tests pass an aggressive one; production keeps the
            default's 30 s ceiling.
        clock: monotonic-seconds callable for the probe schedules
            (tests inject a fake to avoid wall sleeps).
    """

    def __init__(
        self,
        endpoints: list[tuple[str, int]],
        timeout_s: float = 5.0,
        probe_backoff: BackoffPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
        recorder: Any | None = None,
        auth_secret: str | None = None,
        trip_threshold: int = 1,
    ) -> None:
        if not endpoints:
            raise ValueError("a cluster client needs at least one endpoint")
        self.endpoints = [(str(h), int(p)) for h, p in endpoints]
        self.timeout_s = float(timeout_s)
        self.probe_backoff = probe_backoff
        self.clock = clock
        # Handed to every shard handle so link health transitions land
        # in one flight-recorder ring for the whole fleet.
        self.recorder = recorder
        self.auth_secret = auth_secret
        self.trip_threshold = int(trip_threshold)

    def shard_handle(self, index: int, key_meta: dict[str, Any]) -> RemoteShard:
        """The :class:`RemoteShard` for shard ``index``."""
        host, port = self.endpoints[index % len(self.endpoints)]
        return RemoteShard(
            host,
            port,
            key_meta,
            timeout_s=self.timeout_s,
            probe_backoff=self.probe_backoff,
            clock=self.clock,
            recorder=self.recorder,
            auth_secret=self.auth_secret,
            trip_threshold=self.trip_threshold,
        )

    def fleet_stats(self) -> list[dict[str, Any]]:
        """STATS from every endpoint (``{"error": ...}`` for dead hosts).

        Uses throwaway probe connections (no LOAD), so it is safe to
        call while deployments stream batches on their own sockets.
        Endpoints are scraped concurrently (one thread each), so a
        wedged host costs one ``timeout_s`` for the whole fleet instead
        of one per unresponsive endpoint; report order still matches
        :attr:`endpoints`.
        """

        def _scrape(host: str, port: int) -> dict[str, Any]:
            try:
                conn = _Connection(
                    host, port, self.timeout_s, auth_secret=self.auth_secret
                )
                try:
                    _, meta, _ = conn.request(encode_frame(FrameType.STATS, {}))
                    return {"endpoint": f"{host}:{port}", **meta.get("stats", {})}
                finally:
                    conn.close()
            except (OSError, ConnectionError, ProtocolError, RemoteFault) as exc:
                return {"endpoint": f"{host}:{port}", "error": str(exc)}

        if len(self.endpoints) <= 1:
            return [_scrape(host, port) for host, port in self.endpoints]
        with ThreadPoolExecutor(
            max_workers=len(self.endpoints), thread_name_prefix="repro-stats"
        ) as pool:
            futures = [
                pool.submit(_scrape, host, port) for host, port in self.endpoints
            ]
            return [f.result() for f in futures]
