"""Fault-injection TCP proxies for chaos-testing the shard fleet.

A :class:`ChaosProxy` sits between a :class:`~repro.cluster.client.RemoteShard`
and its :class:`~repro.cluster.server.ShardServer`, forwarding raw bytes
while injecting the failure modes real networks produce:

* **delay** — every forwarded chunk sleeps first (RTT inflation, the
  input that pushes deadlines past their budget);
* **drop** — a chunk vanishes mid-stream, desynchronizing the length-
  prefixed framing (the peer sees a protocol error or a stalled read);
* **corrupt** — one bit of a chunk flips (exercises the decoder's
  bounds checks and the client's stable-error handling);
* **blackhole** — bytes are swallowed silently in both directions (the
  connection looks alive but never answers; only socket timeouts save
  the caller);
* **drip** — chunks are re-sliced into tiny pieces with a pause between
  each (slow-loris reads that hold buffers half-full);
* **cut** — the listener and every live connection are aborted at once
  (a link failing, as opposed to a host dying — pair with
  :meth:`ClusterController.kill_server` for the host version).

All knobs are plain attributes re-read per chunk, so a test can mutate
``proxy.delay_s`` / ``proxy.blackhole`` on a live proxy and the very
next frame feels it.  Faults are sampled from a seeded ``random.Random``
so chaos runs are reproducible.

The proxy follows the :class:`~repro.cluster.controller.LocalServerHandle`
hosting pattern: one background thread, one private asyncio loop, and
idempotent teardown.  :func:`wrap_fleet` builds one proxy per fleet
endpoint and returns the proxied endpoint list to hand to a deployment.
"""

from __future__ import annotations

import asyncio
import random
import threading
from typing import Any

__all__ = ["ChaosProxy", "wrap_fleet"]

_CHUNK = 65536


class ChaosProxy:
    """A byte-level TCP proxy that injects faults between two sockets.

    Args:
        upstream: ``(host, port)`` of the real server behind the proxy.
        host / port: where the proxy listens (port 0 picks a free one).
        delay_s: sleep this long before forwarding each chunk.
        drop_rate: probability a chunk is silently discarded.
        corrupt_rate: probability one bit of a chunk is flipped.
        blackhole: swallow every chunk (both directions) while ``True``.
        drip_bytes: when set, forward in slices of at most this many
            bytes, sleeping ``drip_delay_s`` between slices.
        drip_delay_s: pause between drip slices.
        seed: seeds the fault-sampling RNG for reproducible chaos.
    """

    def __init__(
        self,
        upstream: tuple[str, int],
        host: str = "127.0.0.1",
        port: int = 0,
        delay_s: float = 0.0,
        drop_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        blackhole: bool = False,
        drip_bytes: int | None = None,
        drip_delay_s: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.upstream = (str(upstream[0]), int(upstream[1]))
        self.delay_s = float(delay_s)
        self.drop_rate = float(drop_rate)
        self.corrupt_rate = float(corrupt_rate)
        self.blackhole = bool(blackhole)
        self.drip_bytes = drip_bytes
        self.drip_delay_s = float(drip_delay_s)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {
            "connections": 0,
            "upstream_failures": 0,
            "chunks_forwarded": 0,
            "bytes_forwarded": 0,
            "chunks_dropped": 0,
            "chunks_corrupted": 0,
            "chunks_blackholed": 0,
        }
        self._writers: set[asyncio.StreamWriter] = set()
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._endpoint: tuple[str, int] | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run,
            name=f"repro-chaos-proxy-{self.upstream[1]}",
            daemon=True,
        )
        self._requested = (str(host), int(port))
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError(
                f"chaos proxy failed to start: {self._startup_error}"
            ) from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("chaos proxy did not start within 10s")

    # -- hosting --------------------------------------------------------------

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(
                    self._handle, self._requested[0], self._requested[1]
                )
            )
        except BaseException as exc:  # noqa: BLE001 - surfaced to the spawner
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._server = server
        sockname = server.sockets[0].getsockname()
        self._endpoint = (sockname[0], sockname[1])
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.set_exception_handler(lambda _loop, _ctx: None)
            loop.run_until_complete(self._teardown())
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            if pending:
                loop.run_until_complete(asyncio.wait(pending, timeout=2.0))
            for task in asyncio.all_tasks(loop):
                if not task.done():
                    task.cancel()
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    async def _teardown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._writers.clear()

    @property
    def endpoint(self) -> tuple[str, int]:
        """Where clients should connect instead of the upstream."""
        if self._endpoint is None:
            raise RuntimeError("proxy is not listening")
        return self._endpoint

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            doc: dict[str, Any] = dict(self._counters)
        doc["upstream"] = f"{self.upstream[0]}:{self.upstream[1]}"
        return doc

    def _count(self, key: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[key] += amount

    # -- fault lifecycle ------------------------------------------------------

    def cut(self) -> None:
        """Sever the link: abort live connections, refuse new ones.

        Unlike :meth:`stop` the proxy thread stays alive, so counters
        remain readable after the drill; the link itself is gone for
        good (restart the upstream server behind a *new* proxy, or use
        ``blackhole`` for a recoverable stall).
        """
        loop = self._loop
        if loop is None or not loop.is_running():
            return
        done = threading.Event()

        def _do_cut() -> None:
            asyncio.ensure_future(self._teardown()).add_done_callback(
                lambda _f: done.set()
            )

        loop.call_soon_threadsafe(_do_cut)
        done.wait(timeout=5.0)

    def stop(self) -> None:
        """Tear down the proxy and join the host thread (idempotent)."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- forwarding -----------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._count("connections")
        try:
            up_reader, up_writer = await asyncio.open_connection(*self.upstream)
        except OSError:
            self._count("upstream_failures")
            writer.transport.abort()
            return
        self._writers.add(writer)
        self._writers.add(up_writer)
        try:
            # The framed protocol never half-closes: the first direction
            # to see EOF (or an error) means the conversation is over,
            # so the other pump is cancelled rather than left wedged on
            # a read that will never complete.
            pumps = {
                asyncio.ensure_future(self._pump(reader, up_writer)),
                asyncio.ensure_future(self._pump(up_reader, writer)),
            }
            _done, rest = await asyncio.wait(
                pumps, return_when=asyncio.FIRST_COMPLETED
            )
            for task in rest:
                task.cancel()
            await asyncio.gather(*pumps, return_exceptions=True)
        finally:
            self._writers.discard(writer)
            self._writers.discard(up_writer)
            for w in (writer, up_writer):
                transport = w.transport
                if transport is not None:
                    transport.abort()

    async def _pump(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            chunk = await reader.read(_CHUNK)
            if not chunk:
                break
            if self.blackhole:
                # Swallow silently: the peer's read simply never
                # completes, which is what distinguishes a blackhole
                # from a clean disconnect.
                self._count("chunks_blackholed")
                continue
            if self.delay_s > 0.0:
                await asyncio.sleep(self.delay_s)
            if self.drop_rate > 0.0 and self._rng.random() < self.drop_rate:
                self._count("chunks_dropped")
                continue
            if (
                self.corrupt_rate > 0.0
                and self._rng.random() < self.corrupt_rate
            ):
                buf = bytearray(chunk)
                pos = self._rng.randrange(len(buf))
                buf[pos] ^= 1 << self._rng.randrange(8)
                chunk = bytes(buf)
                self._count("chunks_corrupted")
            drip = self.drip_bytes
            if drip is not None and drip > 0:
                for start in range(0, len(chunk), drip):
                    writer.write(chunk[start : start + drip])
                    await writer.drain()
                    if self.drip_delay_s > 0.0:
                        await asyncio.sleep(self.drip_delay_s)
            else:
                writer.write(chunk)
                await writer.drain()
            self._count("chunks_forwarded")
            self._count("bytes_forwarded", len(chunk))
        if writer.can_write_eof():
            try:
                writer.write_eof()
            except (OSError, RuntimeError):
                pass


def wrap_fleet(
    endpoints: list[tuple[str, int]], **chaos_kwargs: Any
) -> tuple[list[ChaosProxy], list[tuple[str, int]]]:
    """One :class:`ChaosProxy` per endpoint; returns (proxies, proxied).

    Hand the proxied endpoint list to a deployment (``endpoints=``) and
    keep the proxy list to mutate faults mid-run::

        proxies, wrapped = wrap_fleet(controller.endpoints, seed=7)
        handle = service.deploy(matrix, endpoints=wrapped, ...)
        proxies[0].delay_s = 0.05       # slow one link
        proxies[1].cut()                # sever another

    Every keyword is forwarded to each proxy's constructor.
    """
    proxies = [ChaosProxy(endpoint, **chaos_kwargs) for endpoint in endpoints]
    return proxies, [proxy.endpoint for proxy in proxies]
