"""`repro.cluster` — one wide matrix served by a fleet over sockets.

The paper's economics end at the edge of one host: a fixed sparse
matrix compiled spatially amortizes beautifully, but a matrix can be
wider than any single device *or any single machine's worth of
devices*.  Columns are independent in this architecture, so the
scale-out step is the same one the serve layer already took in-process
(:mod:`repro.serve.shards`): column shards, each a self-contained
kernel artifact, executed concurrently and reassembled bit-exactly.
This package extends that ship-kernel-once / stream-batches pattern to
a network transport:

* :mod:`repro.cluster.protocol` — the length-prefixed binary frame
  protocol (HELLO version handshake, LOAD by content digest, EXECUTE/
  RESULT batch frames with a self-describing fixed-width ``"bigint"``
  form for >62-bit results, FAULT override sync, STATS);
* :mod:`repro.cluster.server` — :class:`ShardServer`, an asyncio TCP
  server resolving kernels from a shared
  :class:`~repro.serve.cache.CompileCache` artifact store **by digest
  only** (kernels and matrices never cross the wire) and executing
  batches on the usual engine-auto selection;
* :mod:`repro.cluster.client` — :class:`RemoteShard` /
  :class:`ClusterClient`: per-request timeouts, one reconnect-retry,
  unhealthy-host marking, and per-shard RTT telemetry;
* :mod:`repro.cluster.health` — :class:`BackoffPolicy` /
  :class:`ProbeState` / :class:`HealthProber`: the jittered-backoff
  revival state machine that promotes a recovered host back to remote
  serving automatically (``revive()`` stays as the manual fast path);
* :mod:`repro.cluster.controller` — :class:`ClusterController`:
  loopback fleets for tests and benchmarks, ``deploy_fleet`` /
  ``remote_service`` wiring into :class:`~repro.serve.MatMulService`
  so micro-batching, telemetry, and ``fault_campaign(service=...)``
  work unchanged over the network;
* :mod:`repro.cluster.chaos` — :class:`ChaosProxy` / :func:`wrap_fleet`:
  byte-level fault-injection proxies (delay, drop, corrupt, blackhole,
  slow-drip, link cut) for chaos-testing deadline propagation, circuit
  breakers, and graceful degradation against a loopback fleet.

Quick taste (one process; real fleets run
``python -m repro.cluster.server --store ...`` per host)::

    from repro.cluster import ClusterController

    controller = ClusterController(store="/shared/artifacts")
    controller.start_local_fleet(3)
    service = controller.remote_service()
    handle = controller.deploy_fleet(service, matrix)   # 3 column shards
    service.multiply(handle, vectors)                   # == vectors @ matrix

See ``docs/cluster.md`` for the protocol reference, a deploy
walkthrough, and the failure semantics.
"""

from repro.cluster.chaos import ChaosProxy, wrap_fleet
from repro.cluster.client import ClusterClient, RemoteShard, RemoteShardError
from repro.cluster.controller import ClusterController, LocalServerHandle
from repro.cluster.health import BackoffPolicy, HealthProber, ProbeState
from repro.cluster.protocol import (
    ERR_AUTH,
    ERR_EXPIRED,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    FrameType,
    ProtocolError,
    RemoteFault,
    auth_response,
)
from repro.cluster.server import ShardServer

__all__ = [
    "BackoffPolicy",
    "ChaosProxy",
    "ClusterClient",
    "ClusterController",
    "ERR_AUTH",
    "ERR_EXPIRED",
    "FrameType",
    "auth_response",
    "wrap_fleet",
    "HealthProber",
    "LocalServerHandle",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "ProbeState",
    "ProtocolError",
    "RemoteFault",
    "RemoteShard",
    "RemoteShardError",
    "ShardServer",
]
