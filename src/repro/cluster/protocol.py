"""The cluster wire protocol: length-prefixed binary frames over TCP.

One frame per request or response, in both directions::

    uint32 (big-endian)   total payload length
    uint8                 frame type (FrameType)
    uint32 (big-endian)   meta length
    bytes                 meta — a JSON object (UTF-8)
    bytes                 blob — type-specific binary body (may be empty)

The meta/blob split keeps the hot path cheap: an EXECUTE frame's batch
travels as raw little-endian int64 bytes (or, for exact >62-bit
results, self-describing fixed-width ``"bigint"`` limbs — see
:func:`repro.core.serialize.array_to_payload`), while everything
small and structural rides in the JSON meta.

Frame types
-----------

``HELLO``    first frame on every connection, both directions.  The
             client announces ``{"version": PROTOCOL_VERSION}``; the
             server echoes its own version (plus a server name).  Each
             end accepts any peer version in
             :data:`SUPPORTED_VERSIONS` and refuses everything else
             with ``ERROR`` + close — no silent reinterpretation.  A
             server started with a shared secret additionally includes
             a ``"challenge"`` hex nonce in its HELLO reply and expects
             an ``AUTH`` frame next.
``AUTH``     the client's answer to an auth challenge:
             ``{"mac": HMAC-SHA256(secret, challenge_bytes)}`` as hex.
             Verified with a constant-time compare; a mismatch (or a
             missing/ill-formed AUTH) is refused with the stable
             :data:`ERR_AUTH` token and the connection closed.  Never
             sent to — and never requested by — a server running
             without a secret, so the default wire bytes are unchanged.
``LOAD``     bind the connection to one shard: a full compile key
             (matrix digest + compile options), the shard's column
             range, and the expected plan fingerprint.  The server
             resolves it through :meth:`CompileCache.load_key` — from
             the shared artifact store **by content digest only**;
             kernels and matrices never cross the wire.
``EXECUTE``  one batch (meta: engine + array payload header, plus an
             optional ``"trace"`` context — ``{"trace_id", "span_id"}``
             — when the client is tracing, and an optional
             ``"deadline_s"`` remaining-budget float when the client
             propagates request deadlines; blob: the batch bytes).
             Answered by ``RESULT`` — or, when the budget has already
             expired by the time the server would execute, by ``ERROR``
             with the stable :data:`ERR_EXPIRED` token (the work was
             abandoned client-side; skipping it is the correct answer).
``RESULT``   the shard's column slice (same array payload form) plus
             the resolved engine and server-side busy seconds; when the
             EXECUTE carried trace context, also a ``"spans"`` list of
             server-side span records parented on the propagated
             ``span_id`` (see :mod:`repro.obs.tracing`).
``FAULT``    replace (``action="set"``) or drop (``action="clear"``)
             the connection's fault-override set — the network form of
             the per-call ``overrides`` the process backend ships.
``STATS``    request the server's counters; answered with ``OK``.
``OK``       generic success (meta carries the reply body).
``ERROR``    failure; meta carries ``error`` (a stable token) and
             ``message`` (human-readable).

Security note: frames carry nothing executable — batches and results
are raw bytes or fixed-width integer limbs, everything else is JSON.
v3 closed the last gap: the decode-only shim for v1's pickled >62-bit
results is gone from :func:`repro.core.serialize.array_from_payload`,
so a ``"pickle"`` codec frame is rejected like any other malformed
payload.  Fleets still belong on trusted private networks — the same
trust model as the shared artifact directory; see ``docs/cluster.md``.
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
import json
import socket
import struct
import zlib
from enum import IntEnum
from typing import Any

import numpy as np

from repro.core.serialize import array_from_payload, array_to_payload

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "MAX_FRAME_BYTES",
    "EMPTY_OVERRIDES",
    "ERR_AUTH",
    "ERR_EXPIRED",
    "ERR_PROTOCOL",
    "FrameType",
    "ProtocolError",
    "RemoteFault",
    "auth_response",
    "encode_frame",
    "decode_payload",
    "send_frame",
    "recv_frame",
    "read_frame",
    "encode_overrides",
    "decode_overrides",
    "overrides_active",
    "batch_frame",
    "result_frame",
    "frame_array",
]

#: Bumped on any change to the frame layout or the meaning of a frame
#: type.  v2 replaced the pickled >62-bit result codec with the
#: self-describing ``"bigint"`` frame form; v3 retired v1 (and the
#: pickle decode shim with it) and added optional distributed-tracing
#: context: EXECUTE meta may carry ``"trace"``, RESULT meta may carry
#: ``"spans"``.
PROTOCOL_VERSION = 3

#: Peer versions either end accepts at HELLO time.  v2 is tolerated for
#: one release as the rolling-upgrade window: trace context is additive
#: (a v2 server ignores the unknown ``"trace"`` meta key; a v3 client
#: tolerates a RESULT without ``"spans"``), so mixed v2/v3 fleets serve
#: correctly — they just lose server-side spans.  Drop v2 from this
#: tuple next release.
SUPPORTED_VERSIONS = (2, 3)

#: Upper bound on one frame's payload; a length prefix beyond this is
#: treated as a corrupt or hostile stream and the connection dropped
#: (1 GiB comfortably covers a 64-lane batch of any servable width).
MAX_FRAME_BYTES = 1 << 30

_LEN = struct.Struct("!I")
_HEAD = struct.Struct("!BI")


class FrameType(IntEnum):
    HELLO = 1
    OK = 2
    ERROR = 3
    LOAD = 4
    EXECUTE = 5
    RESULT = 6
    FAULT = 7
    STATS = 8
    AUTH = 9


#: Stable ERROR token for a failed (or missing) AUTH response to a
#: server-issued HELLO challenge.
ERR_AUTH = "auth"

#: Stable ERROR token for an EXECUTE whose propagated deadline budget
#: was already exhausted when the server would have run it.
ERR_EXPIRED = "expired"

#: Stable ERROR token for a frame the receiver could not parse (torn
#: framing, non-JSON meta, a blob failing its CRC32).  A client that
#: only ever sends well-formed frames treats this answer as *transport*
#: damage — the bytes were corrupted in flight — and retries on a fresh
#: connection rather than surfacing an application error.
ERR_PROTOCOL = "protocol"


def auth_response(secret: str, challenge: str) -> str:
    """The MAC a client sends for a server's HELLO ``challenge``.

    HMAC-SHA256 over the challenge nonce bytes keyed by the shared
    secret, hex-encoded.  Raises :class:`ProtocolError` for a challenge
    that is not valid hex — a malformed challenge is a protocol
    violation, not an authentication failure.
    """
    try:
        nonce = bytes.fromhex(str(challenge))
    except ValueError as exc:
        raise ProtocolError(f"malformed auth challenge: {exc}") from exc
    return hmac.new(secret.encode("utf-8"), nonce, hashlib.sha256).hexdigest()


class ProtocolError(RuntimeError):
    """The peer sent something that is not a well-formed frame."""


class RemoteFault(RuntimeError):
    """The server answered ERROR; ``token`` is its stable error code."""

    def __init__(self, token: str, message: str) -> None:
        super().__init__(f"{token}: {message}")
        self.token = token


# -- encode / decode ----------------------------------------------------------


def encode_frame(ftype: FrameType, meta: dict[str, Any], blob: bytes = b"") -> bytes:
    """One wire-ready frame: length prefix + type + meta JSON + blob."""
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    payload_len = _HEAD.size + len(meta_bytes) + len(blob)
    if payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {payload_len} bytes exceeds the cap")
    return b"".join(
        (
            _LEN.pack(payload_len),
            _HEAD.pack(int(ftype), len(meta_bytes)),
            meta_bytes,
            blob,
        )
    )


def decode_payload(payload: bytes) -> tuple[FrameType, dict[str, Any], bytes]:
    """Split one length-delimited payload back into (type, meta, blob)."""
    if len(payload) < _HEAD.size:
        raise ProtocolError(f"truncated frame ({len(payload)} bytes)")
    code, meta_len = _HEAD.unpack_from(payload)
    try:
        ftype = FrameType(code)
    except ValueError as exc:
        raise ProtocolError(f"unknown frame type {code}") from exc
    end = _HEAD.size + meta_len
    if end > len(payload):
        raise ProtocolError("frame meta extends past the payload")
    try:
        meta = json.loads(payload[_HEAD.size : end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame meta is not JSON: {exc}") from exc
    if not isinstance(meta, dict):
        raise ProtocolError("frame meta must be a JSON object")
    return ftype, meta, payload[end:]


# -- synchronous transport (the client side) ----------------------------------


def send_frame(
    sock: socket.socket,
    ftype: FrameType,
    meta: dict[str, Any],
    blob: bytes = b"",
) -> None:
    sock.sendall(encode_frame(ftype, meta, blob))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[FrameType, dict[str, Any], bytes]:
    """Block (under the socket's timeout) for one complete frame."""
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced a {length}-byte frame")
    return decode_payload(_recv_exact(sock, length))


# -- asyncio transport (the server side) --------------------------------------


async def read_frame(
    reader: asyncio.StreamReader,
) -> tuple[FrameType, dict[str, Any], bytes]:
    """Read one complete frame; raises ``IncompleteReadError`` at EOF."""
    (length,) = _LEN.unpack(await reader.readexactly(_LEN.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced a {length}-byte frame")
    return decode_payload(await reader.readexactly(length))


# -- frame bodies -------------------------------------------------------------

#: The fault-override schedule of a fault-free connection — the shape
#: :meth:`FastCircuit.fault_overrides` returns with nothing injected.
#: Shared by both protocol ends so the carry-kind set lives in one place.
EMPTY_OVERRIDES: tuple[list, dict] = ([], {"add": [], "sub": [], "neg": []})


def overrides_active(overrides: tuple[list, dict]) -> bool:
    """True when the schedule would actually fault an execution."""
    stuck_out, carry = overrides
    return bool(stuck_out) or any(carry.values())


def encode_overrides(overrides: tuple[list, dict]) -> dict[str, Any]:
    """JSON form of an engine fault-override schedule.

    The exact structure :meth:`FastCircuit.fault_overrides` returns —
    ``(stuck_out, carry)`` with tiny index/value pair lists — which is
    what makes live fault injection replayable on a server that holds
    only the kernel.
    """
    stuck_out, carry = overrides
    return {
        "stuck": [[int(i), int(v)] for i, v in stuck_out],
        "carry": {
            kind: [[int(s), int(v)] for s, v in pairs]
            for kind, pairs in carry.items()
        },
    }


def decode_overrides(meta: dict[str, Any]) -> tuple[list, dict]:
    """Inverse of :func:`encode_overrides`, validated."""
    try:
        stuck_out = [(int(i), int(v)) for i, v in meta["stuck"]]
        carry = {
            str(kind): [(int(s), int(v)) for s, v in pairs]
            for kind, pairs in meta["carry"].items()
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed fault override frame: {exc}") from exc
    return stuck_out, carry


def batch_frame(
    batch: np.ndarray,
    engine: str,
    trace: dict[str, Any] | None = None,
    deadline_s: float | None = None,
) -> bytes:
    """An EXECUTE frame carrying one batch for ``engine``.

    ``trace`` is the optional v3 trace context — a small JSON object
    (``{"trace_id", "span_id"}``) identifying the client-side span this
    dispatch belongs to.  Omitted entirely when the client isn't
    tracing, so the untraced wire bytes are identical to v2's.

    ``deadline_s`` is the batch's *remaining* deadline budget in
    seconds, measured at frame-build time.  A relative budget rather
    than an absolute instant because client and server clocks are not
    synchronized; the server restarts the countdown from frame receipt,
    which only ever errs in the generous direction (network transit
    time is forgiven).  Omitted when no request in the batch carries a
    deadline.
    """
    meta, blob = array_to_payload(batch)
    meta["engine"] = engine
    meta["crc32"] = zlib.crc32(blob)
    if trace is not None:
        meta["trace"] = trace
    if deadline_s is not None:
        meta["deadline_s"] = round(float(deadline_s), 6)
    return encode_frame(FrameType.EXECUTE, meta, blob)


def result_frame(
    result: np.ndarray,
    engine: str,
    busy_s: float,
    spans: list[dict[str, Any]] | None = None,
) -> bytes:
    """A RESULT frame carrying one shard's column slice.

    ``spans`` is the optional v3 return leg of trace propagation: the
    server-side span records (dicts, see
    :meth:`repro.obs.tracing.Span.to_dict`) parented on the EXECUTE
    frame's propagated context, for the client tracer to adopt.
    """
    meta, blob = array_to_payload(result)
    meta["engine"] = engine
    meta["busy_s"] = round(float(busy_s), 9)
    meta["crc32"] = zlib.crc32(blob)
    if spans:
        meta["spans"] = spans
    return encode_frame(FrameType.RESULT, meta, blob)


def frame_array(meta: dict[str, Any], blob: bytes) -> np.ndarray:
    """Decode an EXECUTE/RESULT frame's array, mapping codec errors to
    :class:`ProtocolError` so transport code has one failure type.

    When the sender stamped a ``crc32`` (every v3 peer does), the blob
    is verified first: a payload bit flipped in transit must surface as
    a :class:`ProtocolError` — and therefore a retry or local fallback
    — never as a silently wrong product.  Frames from older peers
    carry no checksum and skip the verification.
    """
    expected = meta.get("crc32")
    if expected is not None and zlib.crc32(blob) != expected:
        raise ProtocolError(
            f"array blob failed its CRC32 check ({len(blob)} bytes); "
            "payload corrupted in transit"
        )
    try:
        return array_from_payload(meta, blob)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
