"""``python -m repro.cluster`` — run one shard server.

A convenience alias for ``python -m repro.cluster.server``; both accept
the same flags (``--store`` is required, ``--port 0`` picks and prints a
free port).
"""

from repro.cluster.server import main

if __name__ == "__main__":
    raise SystemExit(main())
