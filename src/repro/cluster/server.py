"""`ShardServer`: one network host of a sharded spatial multiplier.

The process-shard pattern (ship the kernel once, stream batches) lifted
onto a socket: an asyncio TCP server that

* **loads kernels by content digest** from a shared
  :class:`~repro.serve.cache.CompileCache` artifact store
  (:meth:`~repro.serve.cache.CompileCache.load_key`) — a LOAD frame
  carries a compile key and a column range, never a matrix or a kernel;
* **executes batches** on the same engine-auto selection the in-process
  shard executor uses — the fused cycle-loop-free schedule while the
  connection is fault-free, the bit-plane gate engine whenever FAULT
  overrides are active (and whenever the client pins a gate engine);
* **replays faults deterministically**: FAULT frames install the exact
  override schedule :meth:`FastCircuit.fault_overrides` produces, so a
  client-side fault campaign stays bit-exact across the network, as it
  does across the process boundary;
* answers STATS with its counters (loads, executes, per-engine batches,
  store statistics) for fleet dashboards.

Batches execute in the event loop's default thread pool, so the loop
keeps accepting frames (from other connections) while numpy works.  Each
connection serves one shard at a time — the cluster client opens one
connection per shard — and all connection state (kernel, overrides) dies
with the connection.

Run one from a shell (the deployment unit of ``docs/cluster.md``)::

    python -m repro.cluster.server --store /shared/artifacts --port 9401

The first stdout line is a JSON object with the bound host/port (port 0
picks a free one), so orchestration scripts can scrape endpoints.
"""

from __future__ import annotations

import argparse
import asyncio
import hmac
import json
import pathlib
import secrets
import threading
import time
from typing import Any

from repro.serve.cache import CompileCache, CompileKey
from repro.serve.shards import SERVE_ENGINES
from repro.cluster.protocol import (
    EMPTY_OVERRIDES,
    ERR_AUTH,
    ERR_EXPIRED,
    ERR_PROTOCOL,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    FrameType,
    ProtocolError,
    auth_response,
    decode_overrides,
    encode_frame,
    frame_array,
    overrides_active,
    read_frame,
    result_frame,
)

__all__ = ["ShardServer", "main"]


class _Connection:
    """Per-connection shard state: the loaded engine plus live overrides."""

    def __init__(self) -> None:
        self.fast = None  # FastCircuit, after a successful LOAD
        self.key: CompileKey | None = None
        self.columns: tuple[int, int] | None = None
        self.overrides: tuple[list, dict] = EMPTY_OVERRIDES

    def resolve_engine(self, engine: str) -> str:
        """The server half of ``engine="auto"``: fused unless faults are
        installed on this connection (store kernels are fault-free, so
        the overrides are the only fault source here)."""
        if engine == "auto":
            return "bitplane" if overrides_active(self.overrides) else "fused"
        return engine


class ShardServer:
    """Serve shard kernels from a shared artifact store over TCP.

    Args:
        store: artifact directory (shared with the deploying client and
            any sibling servers), or an existing :class:`CompileCache`.
        host / port: bind address; port 0 binds an ephemeral port
            (read :attr:`port` after :meth:`start`).
        name: server identity echoed in the HELLO reply and stats.
        auth_secret: optional shared secret.  When set, every HELLO
            reply carries a fresh challenge nonce and the connection
            must answer with a correct AUTH frame (HMAC-SHA256,
            constant-time compare) before any other frame is accepted;
            a wrong or missing answer is refused with the stable
            ``"auth"`` token and the connection closed.  ``None`` (the
            default) keeps the handshake exactly as before.
        profiler: optional :class:`repro.obs.profile.StageProfiler`.
            When set, every EXECUTE's busy time lands in the
            ``server_execute`` stage histogram keyed by the
            variant-qualified executor label, and STATS replies carry
            the profiler snapshot under ``"profile"`` so
            :class:`repro.obs.metrics.FleetMetrics` can merge it
            fleet-wide.  ``None`` (the default) records nothing.
    """

    def __init__(
        self,
        store: str | pathlib.Path | CompileCache,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str | None = None,
        auth_secret: str | None = None,
        profiler=None,
    ) -> None:
        if isinstance(store, CompileCache):
            self.cache = store
        else:
            self.cache = CompileCache(directory=store)
        if self.cache.directory is None:
            raise ValueError(
                "a shard server needs an on-disk artifact store; construct "
                "the CompileCache with directory=..."
            )
        self.host = host
        self.port = int(port)
        self.name = name if name is not None else f"shard-{id(self) & 0xFFFF:04x}"
        self.auth_secret = auth_secret
        self.profiler = profiler
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._stats_lock = threading.Lock()
        self._started = time.monotonic()
        self.connections = 0
        self.loads = 0
        self.executes = 0
        self.faults_set = 0
        self.errors = 0
        self.auth_failures = 0
        self.expired_skips = 0
        self.engine_batches: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port` for port 0."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, abort_connections: bool = True) -> None:
        """Stop listening; with ``abort_connections`` also drop every
        live connection mid-stream (how tests model a dying host)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if abort_connections:
            for writer in list(self._writers):
                transport = writer.transport
                if transport is not None:
                    transport.abort()

    @property
    def endpoint(self) -> tuple[str, int]:
        return (self.host, self.port)

    def stats(self) -> dict[str, Any]:
        with self._stats_lock:
            doc = {
                "name": self.name,
                "uptime_s": round(time.monotonic() - self._started, 6),
                "connections": self.connections,
                "loads": self.loads,
                "executes": self.executes,
                "faults_set": self.faults_set,
                "errors": self.errors,
                "auth_failures": self.auth_failures,
                "expired_skips": self.expired_skips,
                "auth_required": self.auth_secret is not None,
                "engine_batches": dict(self.engine_batches),
                "store": self.cache.stats(),
            }
        if self.profiler is not None:
            doc["profile"] = self.profiler.snapshot()
        return doc

    def _count(self, field: str, engine: str | None = None) -> None:
        with self._stats_lock:
            setattr(self, field, getattr(self, field) + 1)
            if engine is not None:
                self.engine_batches[engine] = self.engine_batches.get(engine, 0) + 1

    # -- the per-connection protocol loop ------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._count("connections")
        self._writers.add(writer)
        state = _Connection()
        try:
            if not await self._handshake(reader, writer):
                return
            while True:
                try:
                    ftype, meta, blob = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # clean (or abrupt) client disconnect
                except ProtocolError as exc:
                    # A corrupt stream (garbage length prefix, torn
                    # frame): answer with the stable token and drop the
                    # connection — framing is unrecoverable mid-stream.
                    self._count("errors")
                    writer.write(_error(ERR_PROTOCOL, str(exc)))
                    await writer.drain()
                    return
                try:
                    reply = await self._dispatch(state, ftype, meta, blob)
                except ProtocolError as exc:
                    self._count("errors")
                    reply = _error(ERR_PROTOCOL, str(exc))
                except Exception as exc:  # noqa: BLE001 - fail the request,
                    # not the server: the client maps this to a retry or
                    # a local fallback.
                    self._count("errors")
                    reply = _error("execution", f"{type(exc).__name__}: {exc}")
                writer.write(reply)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        try:
            ftype, meta, _ = await read_frame(reader)
        except (asyncio.IncompleteReadError, ConnectionError, ProtocolError):
            return False
        version = meta.get("version")
        if ftype is not FrameType.HELLO or version not in SUPPORTED_VERSIONS:
            self._count("errors")
            writer.write(
                _error(
                    "version",
                    f"server speaks protocols {SUPPORTED_VERSIONS}, "
                    f"client sent {version!r}",
                )
            )
            await writer.drain()
            return False
        hello: dict[str, Any] = {"version": PROTOCOL_VERSION, "server": self.name}
        challenge = None
        if self.auth_secret is not None:
            challenge = secrets.token_hex(32)
            hello["challenge"] = challenge
        writer.write(encode_frame(FrameType.HELLO, hello))
        await writer.drain()
        if challenge is None:
            return True
        return await self._verify_auth(reader, writer, challenge)

    async def _verify_auth(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        challenge: str,
    ) -> bool:
        """Demand one correct AUTH frame before anything else is served.

        Every refusal path — wrong MAC, wrong frame type, malformed
        meta — answers with the same stable ``"auth"`` token and closes,
        so a probing client learns nothing beyond "authentication
        failed".  The MAC compare is constant-time
        (:func:`hmac.compare_digest`).
        """
        try:
            ftype, meta, _ = await read_frame(reader)
        except (asyncio.IncompleteReadError, ConnectionError, ProtocolError):
            return False
        expected = auth_response(self.auth_secret, challenge)
        mac = meta.get("mac") if ftype is FrameType.AUTH else None
        if not isinstance(mac, str) or not hmac.compare_digest(expected, mac):
            self._count("errors")
            self._count("auth_failures")
            writer.write(_error(ERR_AUTH, "authentication failed"))
            await writer.drain()
            return False
        writer.write(encode_frame(FrameType.OK, {"authenticated": True}))
        await writer.drain()
        return True

    async def _dispatch(
        self, state: _Connection, ftype: FrameType, meta: dict, blob: bytes
    ) -> bytes:
        if ftype is FrameType.LOAD:
            return await self._load(state, meta)
        if ftype is FrameType.EXECUTE:
            return await self._execute(state, meta, blob)
        if ftype is FrameType.FAULT:
            return self._fault(state, meta)
        if ftype is FrameType.STATS:
            return encode_frame(FrameType.OK, {"stats": self.stats()})
        raise ProtocolError(f"unexpected frame type {ftype.name}")

    async def _load(self, state: _Connection, meta: dict) -> bytes:
        try:
            key = CompileKey(
                matrix_digest=str(meta["matrix_digest"]),
                input_width=int(meta["input_width"]),
                scheme=str(meta["scheme"]),
                tree_style=str(meta["tree_style"]),
            )
            start, stop = int(meta["start"]), int(meta["stop"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed LOAD frame: {exc}") from exc
        loop = asyncio.get_running_loop()
        try:
            # Artifact I/O (and a possible re-fuse backfill) off the loop.
            entry = await loop.run_in_executor(None, self.cache.load_key, key)
        except KeyError as exc:
            self._count("errors")
            return _error("unknown-kernel", str(exc))
        expected = meta.get("fingerprint")
        if expected is not None and entry.kernel.fingerprint != str(expected):
            self._count("errors")
            return _error(
                "fingerprint-mismatch",
                f"store kernel for {key.stem!r} has fingerprint "
                f"{entry.kernel.fingerprint[:16]}..., client expected "
                f"{str(expected)[:16]}...",
            )
        if entry.kernel.cols != stop - start:
            self._count("errors")
            return _error(
                "shape-mismatch",
                f"kernel has {entry.kernel.cols} columns, LOAD named the "
                f"range [{start}, {stop})",
            )
        state.fast = entry.fast
        state.key = key
        state.columns = (start, stop)
        state.overrides = EMPTY_OVERRIDES
        self._count("loads")
        return encode_frame(
            FrameType.OK,
            {
                "rows": entry.kernel.rows,
                "cols": entry.kernel.cols,
                "result_width": entry.kernel.result_width,
                "fingerprint": entry.kernel.fingerprint,
                "source": entry.source,
            },
        )

    async def _execute(self, state: _Connection, meta: dict, blob: bytes) -> bytes:
        if state.fast is None:
            return _error("not-loaded", "EXECUTE before a successful LOAD")
        engine = str(meta.get("engine", "auto"))
        if engine not in SERVE_ENGINES:
            raise ProtocolError(f"unknown engine {engine!r}")
        budget = meta.get("deadline_s")
        if budget is not None:
            try:
                budget = float(budget)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"malformed deadline_s: {budget!r}") from exc
        received = time.monotonic()
        batch = frame_array(meta, blob)
        resolved = state.resolve_engine(engine)
        trace = meta.get("trace")
        loop = asyncio.get_running_loop()

        def _run():
            # The budget is re-checked on the worker thread, not just at
            # frame receipt: under load the executor queue itself is
            # where the budget dies, and skipping there is exactly the
            # work-shedding the client asked for.
            if budget is not None and time.monotonic() - received >= budget:
                raise _BudgetExpired()
            return state.fast.multiply_batch(
                batch, engine=resolved, overrides=state.overrides
            )

        start = time.perf_counter()
        try:
            result = await loop.run_in_executor(None, _run)
        except _BudgetExpired:
            self._count("expired_skips")
            return _error(
                ERR_EXPIRED,
                f"deadline budget of {budget:.6f}s exhausted before "
                "execution; batch skipped",
            )
        busy = time.perf_counter() - start
        # STATS/RESULT carry the variant-qualified executor label
        # (``fused:<variant>``), derived from the same artifacts and
        # density selector the client used — so the server-side view in
        # ``repro.obs`` agrees with client telemetry by construction.
        label = resolved
        if resolved == "fused":
            label = f"fused:{state.fast.fused_variant}"
        self._count("executes", engine=label)
        if self.profiler is not None:
            self.profiler.record("server_execute", busy, variant=label)
        spans = None
        if isinstance(trace, dict):
            spans = [self._server_span(state, trace, label, batch, busy)]
        return result_frame(result, label, busy, spans=spans)

    def _server_span(
        self,
        state: _Connection,
        trace: dict,
        engine: str,
        batch,
        busy_s: float,
    ) -> dict[str, Any]:
        """One ``server_execute`` span record for a traced EXECUTE.

        Parented on the *propagated* client span (the v3 ``"trace"``
        context), which is what lets the client assemble a single tree
        without guessing.  ``start_s`` is this host's wall clock — the
        tree hangs together by parent links, not by clock agreement.

        Built as the wire dict directly (the shape of
        :meth:`repro.obs.tracing.Span.to_dict`) rather than via a
        ``Span`` round-trip: this sits on every traced EXECUTE's
        serving path.
        """
        from repro.obs.tracing import Tracer

        lanes = int(batch.shape[0]) if getattr(batch, "ndim", 0) == 2 else 0
        return {
            "trace_id": str(trace.get("trace_id", "")),
            "span_id": Tracer.new_span_id(),
            "parent_id": str(trace.get("span_id", "")) or None,
            "stage": "server_execute",
            "start_s": round(time.time() - busy_s, 6),
            "duration_s": round(busy_s, 9),
            "attrs": {
                "server": self.name,
                "engine": engine,
                "lanes": lanes,
                "columns": list(state.columns) if state.columns else None,
            },
        }

    def _fault(self, state: _Connection, meta: dict) -> bytes:
        action = meta.get("action")
        if action == "clear":
            state.overrides = EMPTY_OVERRIDES
        elif action == "set":
            state.overrides = decode_overrides(meta)
            self._count("faults_set")
        else:
            raise ProtocolError(f"unknown FAULT action {action!r}")
        return encode_frame(FrameType.OK, {"active": overrides_active(state.overrides)})


class _BudgetExpired(Exception):
    """Internal marker: an EXECUTE's deadline budget died pre-execution."""


def _error(token: str, message: str) -> bytes:
    return encode_frame(FrameType.ERROR, {"error": token, "message": message})


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.cluster.server``: run one shard server."""
    parser = argparse.ArgumentParser(
        prog="repro.cluster.server",
        description=(
            "Serve compiled shard kernels from a shared artifact store "
            "over the repro cluster protocol."
        ),
    )
    parser.add_argument(
        "--store",
        required=True,
        help="artifact directory shared with the deploying client "
        "(filled by `python -m repro.serve.prewarm` or by cached deploys)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: pick a free port and print it)",
    )
    parser.add_argument("--name", default=None, help="server identity for stats")
    parser.add_argument(
        "--auth-secret",
        default=None,
        help="shared secret for the HELLO challenge/response handshake "
        "(off by default; clients must pass the same auth_secret=)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record server_execute duration histograms and expose them "
        "in STATS replies (merged fleet-wide by repro.obs)",
    )
    args = parser.parse_args(argv)

    async def _run() -> None:
        profiler = None
        if args.profile:
            from repro.obs.profile import StageProfiler

            profiler = StageProfiler()
        server = ShardServer(
            args.store,
            host=args.host,
            port=args.port,
            name=args.name,
            auth_secret=args.auth_secret,
            profiler=profiler,
        )
        await server.start()
        print(
            json.dumps(
                {"host": server.host, "port": server.port, "store": str(args.store)}
            ),
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
