"""`ClusterController`: one wide matrix, deployed across a server fleet.

The operational glue of :mod:`repro.cluster`:

* :meth:`start_local_fleet` spawns loopback :class:`ShardServer`\\ s on
  background threads (one asyncio loop per server), all sharing one
  artifact store — the in-process stand-in for ``python -m
  repro.cluster.server`` hosts on real machines, used by the tests, the
  benchmark, and quick local experiments;
* :meth:`deploy_fleet` deploys a matrix through a
  :class:`~repro.serve.service.MatMulService` with
  ``backend="remote"`` bound to the fleet's endpoints and store, so
  micro-batching, telemetry, and ``fault_campaign(service=...)`` run
  unchanged over the network;
* :meth:`remote_service` builds a service whose *defaults* are the
  fleet (every deploy routes remote, including the private deployments
  a fault campaign creates);
* :meth:`kill_server` / :meth:`stop` tear hosts down — abruptly, the
  way real hosts die — which is how the fallback path is exercised.

A controller pointed at externally-started servers (pass ``endpoints``)
never owns processes; it is then purely the deploy/stats side.
"""

from __future__ import annotations

import asyncio
import pathlib
import threading
from typing import Any

import numpy as np

from repro.cluster.client import ClusterClient
from repro.cluster.server import ShardServer
from repro.serve.cache import CompileCache
from repro.serve.service import Deployment, MatMulService

__all__ = ["LocalServerHandle", "ClusterController"]


class LocalServerHandle:
    """One :class:`ShardServer` hosted on a background thread's loop.

    ``stop()`` (graceful) and ``kill()`` (abort live connections, the
    way a dying host would) are both idempotent and join the thread.
    """

    def __init__(
        self,
        store: str | pathlib.Path,
        host: str = "127.0.0.1",
        name: str | None = None,
        port: int = 0,
        auth_secret: str | None = None,
        profiler=None,
    ) -> None:
        self.server = ShardServer(
            store,
            host=host,
            port=port,
            name=name,
            auth_secret=auth_secret,
            profiler=profiler,
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name=f"repro-shard-server-{name}", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError(
                f"shard server failed to start: {self._startup_error}"
            ) from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("shard server did not start within 10s")

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to the spawner
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            # The loop is dying: suppress the stream-protocol callback
            # noise that aborted connections otherwise emit here.
            loop.set_exception_handler(lambda _loop, _ctx: None)
            loop.run_until_complete(self.server.stop(abort_connections=True))
            # The aborts wake every connection handler with a transport
            # error; give them a beat to exit on their own, then cancel
            # stragglers so nothing is destroyed while pending.
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            if pending:
                loop.run_until_complete(asyncio.wait(pending, timeout=2.0))
            for task in asyncio.all_tasks(loop):
                if not task.done():
                    task.cancel()
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    @property
    def endpoint(self) -> tuple[str, int]:
        return self.server.endpoint

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    def _shutdown(self) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout=10.0)

    def stop(self) -> None:
        """Stop serving and join the host thread."""
        self._shutdown()

    def kill(self) -> None:
        """Die abruptly: live connections are aborted mid-stream."""
        self._shutdown()


class ClusterController:
    """Operate a shard fleet over one shared artifact store.

    Args:
        store: the artifact directory every server resolves kernels
            from (and every deploy compiles/persists into).  Prewarm it
            with ``python -m repro.serve.prewarm`` for zero-stage
            deploys.
        endpoints: pre-existing ``[(host, port), ...]`` servers; extend
            with :meth:`start_local_fleet` for in-process hosts.
        request_timeout_s: per-request socket timeout handed to every
            deployment's shard links.
        auth_secret: optional shared secret.  Locally-started servers
            then demand the HMAC challenge/response handshake
            (:func:`repro.cluster.protocol.auth_response`), and every
            client this controller builds — deployments, stats scrapes
            — answers with the same secret.
        profile_servers: when true, every locally-started server gets
            its own :class:`repro.obs.profile.StageProfiler`, so STATS
            replies carry ``server_execute`` duration histograms for
            fleet-wide merging (the in-process analogue of ``python -m
            repro.cluster.server --profile``).
    """

    def __init__(
        self,
        store: str | pathlib.Path,
        endpoints: list[tuple[str, int]] | None = None,
        request_timeout_s: float = 5.0,
        auth_secret: str | None = None,
        profile_servers: bool = False,
    ) -> None:
        self.store = pathlib.Path(store)
        self.endpoints: list[tuple[str, int]] = list(endpoints or [])
        self.request_timeout_s = float(request_timeout_s)
        self.auth_secret = auth_secret
        self.profile_servers = bool(profile_servers)
        self._local: list[LocalServerHandle] = []

    def _server_profiler(self):
        if not self.profile_servers:
            return None
        from repro.obs.profile import StageProfiler

        return StageProfiler()

    # -- fleet lifecycle ------------------------------------------------------

    def start_local_fleet(
        self, count: int, host: str = "127.0.0.1"
    ) -> list[tuple[str, int]]:
        """Spawn ``count`` loopback servers on this controller's store."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        for k in range(count):
            handle = LocalServerHandle(
                self.store,
                host=host,
                name=f"local-{len(self._local)}",
                auth_secret=self.auth_secret,
                profiler=self._server_profiler(),
            )
            self._local.append(handle)
            self.endpoints.append(handle.endpoint)
        return list(self.endpoints)

    def kill_server(self, index: int) -> None:
        """Abruptly kill one locally-started server (fallback drills).

        The endpoint stays in the fleet map — exactly the situation a
        real outage creates — so deployments exercise the
        reconnect-retry and local-fallback path instead of resharding.
        """
        self._local[index].kill()

    def restart_server(self, index: int) -> LocalServerHandle:
        """Bring a killed local server back on its *original* endpoint.

        The revival half of an outage drill: deployments hold shard
        links keyed by ``(host, port)``, so the replacement binds the
        dead server's exact port — once it answers, the links'
        jittered-backoff probes promote the shard back to remote
        serving with no fleet-map change and no ``revive()`` call.
        """
        old = self._local[index]
        if old.alive:
            raise RuntimeError(f"server {index} is still running; kill it first")
        host, port = old.endpoint
        handle = LocalServerHandle(
            self.store,
            host=host,
            name=f"local-{index}-r",
            port=port,
            auth_secret=self.auth_secret,
            profiler=self._server_profiler(),
        )
        self._local[index] = handle
        return handle

    def stop(self) -> None:
        """Stop every locally-started server."""
        for handle in self._local:
            handle.stop()
        self._local = []

    def __enter__(self) -> "ClusterController":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- deployment -----------------------------------------------------------

    def remote_service(
        self,
        cache: CompileCache | None = None,
        **service_kwargs: Any,
    ) -> MatMulService:
        """A :class:`MatMulService` whose default backend is this fleet.

        Every ``deploy`` (and every deployment made *on the caller's
        behalf*, e.g. by ``fault_campaign(service=...)``) then routes
        over the fleet's endpoints with kernels resolved from the
        shared store.  ``cache`` defaults to a fresh
        :class:`CompileCache` on the fleet store, making warm deploys
        zero-stage end to end.
        """
        if cache is None:
            cache = CompileCache(directory=self.store)
        service_kwargs.setdefault("auth_secret", self.auth_secret)
        return MatMulService(
            cache=cache,
            backend="remote",
            endpoints=list(self.endpoints),
            store=str(self.store),
            request_timeout_s=self.request_timeout_s,
            **service_kwargs,
        )

    def deploy_fleet(
        self,
        service: MatMulService,
        matrix: np.ndarray,
        shards: int | None = None,
        **deploy_kwargs: Any,
    ) -> Deployment:
        """Deploy ``matrix`` across the fleet through ``service``.

        ``shards`` defaults to one shard per endpoint — the canonical
        one-host-one-column-range fleet — and every other ``deploy``
        keyword (``input_width``, ``scheme``, ``engine``, micro-batch
        limits, ``use_cache`` ...) passes through unchanged.  The
        returned handle is an ordinary :class:`Deployment`: submit,
        stream, telemetry, and campaigns all behave as for local
        backends.
        """
        if not self.endpoints:
            raise RuntimeError(
                "no endpoints: start_local_fleet(...) or pass endpoints="
            )
        return service.deploy(
            matrix,
            shards=shards if shards is not None else len(self.endpoints),
            backend="remote",
            endpoints=list(self.endpoints),
            store=str(self.store),
            request_timeout_s=self.request_timeout_s,
            **deploy_kwargs,
        )

    # -- observability --------------------------------------------------------

    def fleet_stats(self) -> list[dict[str, Any]]:
        """STATS from every endpoint (error entries for dead hosts)."""
        client = ClusterClient(
            self.endpoints,
            timeout_s=self.request_timeout_s,
            auth_secret=self.auth_secret,
        )
        return client.fleet_stats()
