"""Automatic shard revival: jittered-backoff health probing.

PR 5's failure semantics stopped at *degradation*: a shard link that
failed twice was marked unhealthy and served locally until a human
called :meth:`RemoteShard.revive`.  This module is the closing half of
the loop — the state machine that decides *when an unhealthy link is
worth probing again*, so a host that comes back is promoted back to
remote serving with no operator in the path.

Three pieces, all clock-injectable so the test suite never sleeps:

* :class:`BackoffPolicy` — jittered exponential backoff.  The delay
  after ``n`` consecutive failures is ``initial_s * multiplier**(n-1)``
  capped at ``max_s``, stretched by up to ``jitter`` (a fraction) of
  itself from an injectable RNG.  Jitter matters at fleet scale: when a
  host dies, every deployment's link to it fails in the same instant,
  and un-jittered backoff would re-probe them in lock-step — a
  reconnect stampede against a host that just restarted.
* :class:`ProbeState` — one link's revival bookkeeping: consecutive
  failures, the next-probe deadline, probe/revival counters, and the
  last error string.  ``note_failure(now)`` schedules the next probe,
  ``due(now)`` gates attempts, ``note_success()`` resets everything.
  Surfaced verbatim in :meth:`RemoteShard.telemetry` (and therefore in
  ``ShardedMultiplier.utilization()``) so a dashboard shows *when* a
  dead link will next be tried, not just that it is dead.
* :class:`HealthProber` — drives :meth:`RemoteShard.probe` across a
  set of shard links.  Execution traffic probes lazily on its own
  (an unhealthy link whose probe is due is re-attempted by the next
  batch), so the prober exists for links with *no* offered load: call
  :meth:`HealthProber.poke` from any housekeeping tick (a telemetry
  scrape, a controller loop) and due links are probed via the normal
  HELLO + LOAD handshake.

The clock is any ``() -> float`` monotonic-seconds callable
(``time.monotonic`` in production, a fake in tests); nothing in this
module ever sleeps.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Iterable, Protocol

__all__ = ["BackoffPolicy", "ProbeState", "HealthProber"]


class BackoffPolicy:
    """Jittered exponential backoff between revival probes.

    Args:
        initial_s: delay after the first failure.
        multiplier: growth factor per additional consecutive failure.
        max_s: ceiling on the un-jittered delay.
        jitter: fraction of the delay added as random stretch — the
            actual delay is uniform in ``[delay, delay * (1 + jitter)]``.
        rng: injectable :class:`random.Random` (tests pass a seeded one
            so schedules are deterministic).
    """

    def __init__(
        self,
        initial_s: float = 0.5,
        multiplier: float = 2.0,
        max_s: float = 30.0,
        jitter: float = 0.25,
        rng: random.Random | None = None,
    ) -> None:
        if initial_s <= 0:
            raise ValueError(f"initial_s must be > 0, got {initial_s}")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if max_s < initial_s:
            raise ValueError(f"max_s must be >= initial_s, got {max_s}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.initial_s = float(initial_s)
        self.multiplier = float(multiplier)
        self.max_s = float(max_s)
        self.jitter = float(jitter)
        self._rng = rng if rng is not None else random.Random()

    def base_delay(self, failures: int) -> float:
        """The un-jittered delay after ``failures`` consecutive failures."""
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        # Cap the exponent before exponentiating so a long outage can
        # never overflow to inf.
        delay = self.initial_s
        for _ in range(failures - 1):
            delay *= self.multiplier
            if delay >= self.max_s:
                return self.max_s
        return min(delay, self.max_s)

    def delay(self, failures: int) -> float:
        """The jittered delay: ``base * (1 + U[0, jitter])``."""
        base = self.base_delay(failures)
        return base * (1.0 + self.jitter * self._rng.random())


class ProbeState:
    """Revival bookkeeping for one shard link (see module docstring)."""

    def __init__(
        self,
        backoff: BackoffPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.clock = clock
        self.consecutive_failures = 0
        self.next_probe_at: float | None = None
        self.last_delay_s = 0.0
        self.probes = 0
        self.auto_revivals = 0
        self.last_error: str | None = None

    def note_failure(self, error: str | None = None) -> float:
        """Record one failed attempt; returns the scheduled backoff delay."""
        self.consecutive_failures += 1
        self.last_delay_s = self.backoff.delay(self.consecutive_failures)
        self.next_probe_at = self.clock() + self.last_delay_s
        if error is not None:
            self.last_error = error
        return self.last_delay_s

    def note_success(self, revived: bool = False) -> None:
        """Reset the machine after a successful request or probe."""
        self.consecutive_failures = 0
        self.next_probe_at = None
        self.last_delay_s = 0.0
        self.last_error = None
        if revived:
            self.auto_revivals += 1

    def note_probe(self) -> None:
        self.probes += 1

    def reset(self) -> None:
        """Clear all backoff state (the manual ``revive()`` fast path)."""
        self.consecutive_failures = 0
        self.next_probe_at = None
        self.last_delay_s = 0.0

    def due(self, now: float | None = None) -> bool:
        """True when a probe should be attempted now.

        A link that never failed (or was manually revived) is always
        due — there is no backoff to respect.
        """
        if self.next_probe_at is None:
            return True
        return (now if now is not None else self.clock()) >= self.next_probe_at

    def telemetry(self, now: float | None = None) -> dict[str, Any]:
        """The probe-state block of a shard's telemetry entry."""
        now = now if now is not None else self.clock()
        return {
            "consecutive_failures": self.consecutive_failures,
            "next_probe_in_s": (
                round(max(0.0, self.next_probe_at - now), 6)
                if self.next_probe_at is not None
                else 0.0
            ),
            "backoff_s": round(self.last_delay_s, 6),
            "backoff_max_s": self.backoff.max_s,
            "probes": self.probes,
            "auto_revivals": self.auto_revivals,
            "last_error": self.last_error,
        }


class _ProbeTarget(Protocol):  # pragma: no cover - typing only
    healthy: bool

    def probe(self) -> bool: ...


class HealthProber:
    """Probe due unhealthy links across a set of shard handles.

    The executor's traffic already probes lazily; this covers idle
    deployments (no traffic to trigger a probe) and operator loops that
    want recovery *before* the next request pays for it.  Stateless
    beyond the shard handles themselves — all backoff state lives in
    each shard's :class:`ProbeState`, so traffic-driven and
    prober-driven probing share one schedule.
    """

    def __init__(self, shards: Iterable[_ProbeTarget]) -> None:
        self._shards = list(shards)

    def poke(self) -> dict[str, int]:
        """Probe every unhealthy shard whose backoff deadline has passed.

        Returns ``{"probed": n, "revived": m, "waiting": k}`` — ``k``
        counts unhealthy links still inside their backoff window.
        """
        probed = revived = waiting = 0
        for shard in self._shards:
            if shard.healthy:
                continue
            if not shard.probe_due():
                waiting += 1
                continue
            probed += 1
            if shard.probe():
                revived += 1
        return {"probed": probed, "revived": revived, "waiting": waiting}
