"""Eq. 2 on the spatial architecture: a hardware-compiled readout.

After training, ``W_out`` is as fixed as the reservoir itself — "the
matrix is fixed for the lifetime of the computation" applies to inference
with the output layer too.  This module quantizes a trained
:class:`~repro.reservoir.readout.RidgeReadout` and compiles it into a
:class:`~repro.core.multiplier.FixedMatrixMultiplier`, completing the
all-hardware inference path: reservoir update and readout are both spatial
fixed-matrix products.
"""

from __future__ import annotations

import numpy as np

from repro.core.multiplier import FixedMatrixMultiplier
from repro.reservoir.readout import RidgeReadout

__all__ = ["HardwareReadout"]


class HardwareReadout:
    """A trained linear readout compiled to the bit-serial architecture.

    Weights are quantized with a power-of-two scale ``2^shift`` (so
    dequantization is exact up to rounding of the weights themselves) and
    the multiplier computes the integer products; predictions are
    dequantized floats.  The bias is applied after dequantization.
    """

    def __init__(
        self,
        readout: RidgeReadout,
        weight_width: int = 8,
        input_width: int = 8,
        scheme: str = "csd",
        rng: np.random.Generator | None = None,
    ) -> None:
        if readout.w_out is None:
            raise ValueError("readout must be fitted before hardware compilation")
        if weight_width < 2:
            raise ValueError(f"weight_width must be >= 2, got {weight_width}")
        w_out = np.atleast_2d(readout.w_out)  # (outputs, dim)
        qmax = (1 << (weight_width - 1)) - 1
        peak = float(np.max(np.abs(w_out))) if w_out.size else 0.0
        if peak == 0.0:
            self.shift = 0
        else:
            self.shift = max(0, int(np.floor(np.log2(qmax / peak))))
        scale = float(1 << self.shift)
        self.w_out_q = np.clip(np.round(w_out * scale), -qmax, qmax).astype(np.int64)
        self.bias = np.asarray(readout.bias, dtype=float)
        self.outputs = w_out.shape[0]
        # The multiplier computes x^T M; y = W_out x needs M = W_out^T.
        self.multiplier = FixedMatrixMultiplier(
            self.w_out_q.T, input_width=input_width, scheme=scheme, rng=rng
        )

    def predict_integer(self, state_q: np.ndarray) -> np.ndarray:
        """Raw integer products ``W_out_q x`` from the compiled hardware."""
        return self.multiplier.multiply(state_q)

    def dequantize(self, raw: np.ndarray) -> np.ndarray:
        """Dequantize raw integer products ``(timesteps, outputs)``.

        The single source of truth for undoing the ``2^shift`` weight
        scale and applying the bias — used by :meth:`predict` and by any
        external executor of the compiled readout (e.g. a served
        deployment computing the integer products in batch).
        """
        out = np.atleast_2d(raw).astype(float) / float(1 << self.shift) + self.bias
        if out.shape[1] == 1:
            out = out[:, 0]
        return out if len(out) > 1 else out[0]

    def predict(self, states_q: np.ndarray) -> np.ndarray:
        """Dequantized predictions for integer reservoir states.

        ``states_q`` is ``(timesteps, dim)`` (or a single state vector) of
        integer states as produced by :class:`IntegerESN`.
        """
        arr = np.atleast_2d(np.asarray(states_q, dtype=np.int64))
        return self.dequantize(np.stack([self.predict_integer(state) for state in arr]))

    def quantization_error_bound(self, state_peak: float) -> float:
        """Worst-case per-output error from weight rounding.

        Each weight is off by at most ``0.5 / 2^shift``; a dim-length dot
        product against states bounded by ``state_peak`` accumulates at
        most ``dim * state_peak * 0.5 / 2^shift``.
        """
        dim = self.w_out_q.shape[1]
        return dim * state_peak * 0.5 / float(1 << self.shift)
