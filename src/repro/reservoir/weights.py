"""Reservoir weight generation.

Echo State Networks use "very large, sparse matrices [...] generated
randomly and never modified by training" (Sec. II).  Standard ESN
initialization heuristics are implemented:

* sparse uniform recurrent matrix ``W`` rescaled to a target spectral
  radius (< 1 for the echo state property);
* dense or sparse input matrix ``W_in`` with a scale hyperparameter;
* sparsity defaults follow the paper's references: the Bianchi et al.
  baseline uses dimension 800 at 75% element sparsity, and Gallicchio
  recommends "sparsity should exceed 80%".
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "random_reservoir",
    "random_input_weights",
    "spectral_radius",
    "rescale_spectral_radius",
]


def spectral_radius(matrix: np.ndarray, iterations: int = 200, seed: int = 0) -> float:
    """Largest absolute eigenvalue, via dense eigvals or power iteration.

    Dense eigensolve below dimension 600; power iteration (with a fixed
    seed for reproducibility) above, where exact eigvals get slow.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"spectral radius needs a square matrix, got {arr.shape}")
    n = arr.shape[0]
    if n <= 600:
        return float(np.max(np.abs(np.linalg.eigvals(arr))))
    rng = np.random.default_rng(seed)
    vec = rng.standard_normal(n)
    vec /= np.linalg.norm(vec)
    estimate = 0.0
    for _ in range(iterations):
        nxt = arr @ vec
        norm = np.linalg.norm(nxt)
        if norm == 0:
            return 0.0
        estimate = norm
        vec = nxt / norm
    return float(estimate)


def rescale_spectral_radius(matrix: np.ndarray, target: float) -> np.ndarray:
    """Scale a matrix so its spectral radius equals ``target``."""
    if target <= 0:
        raise ValueError(f"target spectral radius must be > 0, got {target}")
    current = spectral_radius(matrix)
    if current == 0:
        raise ValueError("matrix has zero spectral radius; cannot rescale")
    return np.asarray(matrix, dtype=float) * (target / current)


def random_reservoir(
    dim: int,
    element_sparsity: float = 0.75,
    spectral_radius_target: float = 0.9,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sparse uniform recurrent matrix with the echo state property.

    Entries are uniform in [-1, 1]; an exact fraction is zeroed; the
    result is rescaled to the requested spectral radius (default 0.9,
    inside the echo-state regime).
    """
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    if not 0.0 <= element_sparsity < 1.0:
        raise ValueError(f"element_sparsity must be in [0, 1), got {element_sparsity}")
    rng = rng or np.random.default_rng(0)
    w = rng.uniform(-1.0, 1.0, size=(dim, dim))
    zeros = int(round(dim * dim * element_sparsity))
    if zeros:
        flat = w.ravel()
        flat[rng.choice(dim * dim, size=zeros, replace=False)] = 0.0
    return rescale_spectral_radius(w, spectral_radius_target)


def random_input_weights(
    dim: int,
    n_inputs: int,
    scale: float = 0.5,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Dense uniform input matrix ``W_in`` of shape (dim, n_inputs)."""
    if dim < 1 or n_inputs < 1:
        raise ValueError("dim and n_inputs must be >= 1")
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    rng = rng or np.random.default_rng(0)
    return rng.uniform(-scale, scale, size=(dim, n_inputs))
