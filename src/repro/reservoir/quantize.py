"""Integer Echo State Networks (Kleyko et al. [16] in the paper).

"It is shown in [16] that the elements of these reservoirs can be
quantized into integers.  The authors show a variety of tasks where a
precision of 3-4 bits leads to no accuracy loss."

:class:`IntegerESN` evolves entirely in integer arithmetic: the recurrent
product is exactly the signed-integer gemv the spatial multiplier
implements, so a quantized reservoir can be *compiled to hardware* and
stepped bit-exactly by the gate-level simulator (see
:mod:`repro.reservoir.hw_esn`).

Update rule (a fixed-point mirror of Eq. 1)::

    pre(n)  = W_q x(n-1) + Win_q u_q(n)            # exact integer gemv
    x(n)    = clip(pre(n) >> shift, state range)    # saturating activation

The right-shift implements the fixed-point rescale; saturation is the
integer stand-in for tanh (piecewise-linear, standard in integer ESNs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["IntegerESN", "quantize_weights", "quantize_esn"]


def quantize_weights(weights: np.ndarray, width: int) -> tuple[np.ndarray, float]:
    """Symmetric uniform quantization of a float matrix to signed ints.

    Returns ``(W_q, scale)`` with ``W_q ~= W * scale`` and entries in
    ``[-(2^(w-1) - 1), 2^(w-1) - 1]`` (the symmetric range keeps the
    quantizer unbiased).
    """
    if width < 2:
        raise ValueError(f"width must be >= 2 for signed weights, got {width}")
    arr = np.asarray(weights, dtype=float)
    peak = float(np.max(np.abs(arr))) if arr.size else 0.0
    if peak == 0.0:
        return np.zeros_like(arr, dtype=np.int64), 1.0
    qmax = (1 << (width - 1)) - 1
    scale = qmax / peak
    return np.round(arr * scale).astype(np.int64), scale


@dataclass
class IntegerESN:
    """A fully-integer ESN whose recurrent gemv matches the hardware.

    Attributes:
        w_q: signed integer recurrent matrix (dim x dim).
        w_in_q: signed integer input matrix (dim x n_inputs).
        shift: right-shift applied to the pre-activation (fixed-point
            rescale); ``pre >> shift`` uses floor division semantics.
        state_width: two's-complement width of the saturating state.
    """

    w_q: np.ndarray
    w_in_q: np.ndarray
    shift: int
    state_width: int

    def __post_init__(self) -> None:
        self.w_q = np.asarray(self.w_q, dtype=np.int64)
        self.w_in_q = np.asarray(self.w_in_q, dtype=np.int64)
        if self.w_q.ndim != 2 or self.w_q.shape[0] != self.w_q.shape[1]:
            raise ValueError(f"W_q must be square, got {self.w_q.shape}")
        if self.w_in_q.shape[0] != self.w_q.shape[0]:
            raise ValueError("W_in_q rows must match W_q dimension")
        if self.shift < 0:
            raise ValueError(f"shift must be >= 0, got {self.shift}")
        if self.state_width < 2:
            raise ValueError(f"state_width must be >= 2, got {self.state_width}")

    @property
    def dim(self) -> int:
        return self.w_q.shape[0]

    @property
    def n_inputs(self) -> int:
        return self.w_in_q.shape[1]

    @property
    def state_min(self) -> int:
        return -(1 << (self.state_width - 1))

    @property
    def state_max(self) -> int:
        return (1 << (self.state_width - 1)) - 1

    def activation(self, pre: np.ndarray) -> np.ndarray:
        """Shift-and-saturate integer activation."""
        scaled = np.right_shift(pre, self.shift)
        return np.clip(scaled, self.state_min, self.state_max)

    def step(
        self,
        state: np.ndarray,
        u_q: np.ndarray,
        recurrent_product: np.ndarray | None = None,
    ) -> np.ndarray:
        """One integer state update (Eq. 1: the product is ``W_q x``).

        ``recurrent_product`` lets a hardware backend supply ``W_q x``.
        The compiled multiplier computes row-vector times matrix
        (``o = a^T V``, Eq. 3), and ``x^T W_q^T == (W_q x)^T``, so
        hardware-backed reservoirs compile ``W_q`` *transposed* —
        :mod:`repro.reservoir.hw_esn` handles this.
        """
        state = np.asarray(state, dtype=np.int64)
        if recurrent_product is None:
            recurrent_product = self.w_q @ state
        pre = recurrent_product + self.w_in_q @ np.atleast_1d(u_q)
        return self.activation(pre)

    def run(
        self,
        inputs_q: np.ndarray,
        initial_state: np.ndarray | None = None,
        washout: int = 0,
    ) -> np.ndarray:
        """Harvest integer states for a quantized input sequence."""
        u_seq = np.atleast_2d(np.asarray(inputs_q, dtype=np.int64))
        if u_seq.shape[0] == 1 and u_seq.shape[1] != self.n_inputs:
            u_seq = u_seq.T
        steps = u_seq.shape[0]
        if not 0 <= washout < steps:
            raise ValueError(f"washout {washout} out of range for {steps} steps")
        state = (
            np.zeros(self.dim, dtype=np.int64)
            if initial_state is None
            else np.asarray(initial_state, dtype=np.int64).copy()
        )
        states = np.empty((steps - washout, self.dim), dtype=np.int64)
        for t in range(steps):
            state = self.step(state, u_seq[t])
            if t >= washout:
                states[t - washout] = state
        return states

    def quantize_inputs(self, inputs: np.ndarray, input_width: int = 8) -> np.ndarray:
        """Quantize float inputs in [-1, 1] to the integer input range."""
        qmax = (1 << (input_width - 1)) - 1
        arr = np.clip(np.asarray(inputs, dtype=float), -1.0, 1.0)
        return np.round(arr * qmax).astype(np.int64)


def quantize_esn(
    w: np.ndarray,
    w_in: np.ndarray,
    weight_width: int = 8,
    state_width: int = 8,
    shift: int | None = None,
) -> IntegerESN:
    """Quantize a float reservoir into an :class:`IntegerESN`.

    Weights are scaled by an exact power of two, ``2^shift``, so that the
    post-accumulation right-shift restores *exactly* the float model's
    gain — a non-power-of-two scale would silently rescale the spectral
    radius by up to 2x and damp or destabilize the reservoir dynamics.
    The largest shift whose scaled weights still fit ``weight_width`` bits
    is chosen; pass ``shift`` explicitly to trade precision for headroom.
    """
    if weight_width < 2:
        raise ValueError(f"weight_width must be >= 2, got {weight_width}")
    w = np.asarray(w, dtype=float)
    w_in = np.asarray(w_in, dtype=float)
    qmax = (1 << (weight_width - 1)) - 1
    peak = max(
        float(np.max(np.abs(w))) if w.size else 0.0,
        float(np.max(np.abs(w_in))) if w_in.size else 0.0,
    )
    if shift is None:
        if peak == 0.0:
            shift = 0
        else:
            shift = max(0, int(np.floor(np.log2(qmax / peak))))
    scale = float(1 << shift)
    w_q = np.clip(np.round(w * scale), -qmax, qmax).astype(np.int64)
    w_in_q = np.clip(np.round(w_in * scale), -qmax, qmax).astype(np.int64)
    return IntegerESN(
        w_q=w_q, w_in_q=w_in_q, shift=shift, state_width=state_width
    )
