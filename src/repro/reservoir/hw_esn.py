"""An integer ESN whose recurrent gemv runs on the compiled multiplier.

This closes the paper's loop: the reservoir's fixed recurrent matrix is
compiled once into the spatial bit-serial architecture, and every state
update's ``x(n-1)^T W`` product is produced by that hardware.  Two
execution backends are provided:

* ``backend="functional"`` — the multiplier's exact integer path (fast;
  bit-identical to the hardware by the library's own cross-validation);
* ``backend="gates"`` — the compiled circuit's execution engines
  (:mod:`repro.hwsim.fast`).  ``engine="auto"`` (the default) runs the
  fused cycle-loop-free shift-add schedule while the circuit is
  fault-free and falls back to the cycle-accurate bit-plane simulation
  whenever faults are injected; pass an explicit gate engine
  (``"bitplane"``/``"batched"``/``"scalar"``) to force stepping every
  serial adder of the netlist each state update.

Both backends also accept *batched* states (:meth:`HardwareESN.step_batch`
/ :meth:`HardwareESN.run_batch`): ``B`` independent reservoir instances
advance in lock-step, with every update's ``B`` recurrent products
computed by one batched hardware multiply — on the ``gates`` backend a
single bit-plane pass of the compiled netlist per time step.

Because the multiplier computes row-vector-times-matrix (``o = a^T V``,
Eq. 3), the reservoir's update ``W x`` is expressed as ``x^T W^T``: the
*transpose* of the recurrent matrix is what gets compiled.
"""

from __future__ import annotations

import numpy as np

from repro.core.multiplier import FixedMatrixMultiplier
from repro.core.plan import MatrixPlan
from repro.reservoir.quantize import IntegerESN

__all__ = ["HardwareESN"]

_BACKENDS = ("functional", "gates")


class HardwareESN:
    """Integer ESN bound to a compiled :class:`FixedMatrixMultiplier`.

    With ``include_input=True`` the *augmented* matrix ``[W^T ; W_in^T]``
    is compiled instead, and the whole pre-activation
    ``W x + W_in u`` comes out of the hardware in one product over the
    augmented vector ``[x, u]`` — no software matrix work remains in the
    state update (the paper's rectangular-matrix support at work).
    """

    def __init__(
        self,
        esn: IntegerESN,
        scheme: str = "csd",
        backend: str = "functional",
        rng: np.random.Generator | None = None,
        include_input: bool = False,
        input_quant_width: int = 8,
        plan: MatrixPlan | None = None,
        engine: str = "auto",
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.esn = esn
        self.backend = backend
        self.engine = engine
        self.include_input = include_input
        if include_input:
            matrix = np.vstack([esn.w_q.T, esn.w_in_q.T])
            stream_width = max(esn.state_width, input_quant_width)
        else:
            matrix = esn.w_q.T  # compile W^T so that x^T W^T == W x
            stream_width = esn.state_width
        self.multiplier = FixedMatrixMultiplier(
            matrix,
            input_width=stream_width,
            scheme=scheme,
            rng=rng,
            plan=plan,  # precomputed (e.g. serve-cache) plan skips re-planning
        )
        self._circuit = None
        if backend == "gates":
            from repro.hwsim.fast import FastCircuit

            if engine != "auto" and engine not in FastCircuit.ENGINES:
                raise ValueError(
                    f"engine must be 'auto' or one of {FastCircuit.ENGINES}, "
                    f"got {engine!r}"
                )
            self._circuit = FastCircuit.from_compiled(self.multiplier.build_circuit())

    @property
    def dim(self) -> int:
        return self.esn.dim

    def _gates_engine(self) -> str:
        """Resolve ``engine="auto"`` against the circuit's current faults."""
        if self.engine != "auto":
            return self.engine
        return "bitplane" if self._circuit.has_faults else "fused"

    def _hardware_multiply(self, vector: np.ndarray) -> np.ndarray:
        """One hardware product; a 2-D input batches independent vectors."""
        arr = np.asarray(vector)
        if arr.ndim == 2:
            if self.backend == "gates":
                return self._circuit.multiply_batch(arr, engine=self._gates_engine())
            return self.multiplier.multiply_batch(arr)
        if self.backend == "gates":
            return self._circuit.multiply_batch(
                arr[None, :], engine=self._gates_engine()
            )[0]
        return self.multiplier.multiply(arr)

    def recurrent_product(self, state: np.ndarray) -> np.ndarray:
        """``W_q x`` computed by the compiled hardware."""
        if self.include_input:
            raise RuntimeError(
                "include_input=True compiles the augmented matrix; use step()"
            )
        return self._hardware_multiply(state)

    def step(self, state: np.ndarray, u_q: np.ndarray) -> np.ndarray:
        if self.include_input:
            augmented = np.concatenate(
                [np.asarray(state, dtype=np.int64), np.atleast_1d(u_q)]
            )
            pre = self._hardware_multiply(augmented)
            return self.esn.activation(pre)
        return self.esn.step(state, u_q, recurrent_product=self.recurrent_product(state))

    def step_batch(self, states: np.ndarray, u_q: np.ndarray) -> np.ndarray:
        """One state update for ``B`` independent reservoir instances.

        ``states`` is ``(B, dim)`` and ``u_q`` is ``(B, n_inputs)`` (a
        1-D ``u_q`` is treated as a batch of single-input drives).  All
        ``B`` recurrent products go through the compiled hardware as one
        batched multiply — on the ``gates`` backend that is a single
        bit-plane pass of the netlist, the paper's amortization of one
        fixed matrix over a stream of vectors.
        """
        states = np.atleast_2d(np.asarray(states, dtype=np.int64))
        u = np.asarray(u_q, dtype=np.int64)
        if u.ndim == 1:
            u = u[:, None]
        if u.shape != (states.shape[0], self.esn.n_inputs):
            raise ValueError(
                f"inputs must have shape ({states.shape[0]}, "
                f"{self.esn.n_inputs}), got {u.shape}"
            )
        if self.include_input:
            pre = self._hardware_multiply(np.hstack([states, u]))
            return self.esn.activation(pre)
        # One batched hardware product, then delegate the update rule to
        # IntegerESN.step per lane so run_batch can never drift from run.
        recurrent = self._hardware_multiply(states)
        return np.stack(
            [
                self.esn.step(states[k], u[k], recurrent_product=recurrent[k])
                for k in range(states.shape[0])
            ]
        )

    def run_batch(
        self,
        inputs_q: np.ndarray,
        initial_states: np.ndarray | None = None,
        washout: int = 0,
    ) -> np.ndarray:
        """Roll out ``B`` independent reservoirs in lock-step.

        ``inputs_q`` must be 3-D, ``(B, steps, n_inputs)`` — the 2-D
        convenience shapes that :meth:`run` accepts are deliberately
        rejected here, because ``(steps, 1)`` would be silently
        reinterpreted as ``steps`` one-step sequences.  The result is
        ``(B, steps - washout, dim)``.  Each of the ``steps`` updates
        performs one *batched* hardware product over all ``B`` states,
        matching ``run`` bit-exactly per sequence — the sweep-many-
        reservoirs workload from the sparsity-in-RC literature.
        """
        u_seq = np.asarray(inputs_q, dtype=np.int64)
        if u_seq.ndim != 3 or u_seq.shape[2] != self.esn.n_inputs:
            raise ValueError(
                f"inputs must have shape (batch, steps, {self.esn.n_inputs}), "
                f"got {np.asarray(inputs_q).shape}"
            )
        batch, steps = u_seq.shape[0], u_seq.shape[1]
        if not 0 <= washout < steps:
            raise ValueError(f"washout {washout} out of range for {steps} steps")
        if initial_states is None:
            states = np.zeros((batch, self.dim), dtype=np.int64)
        else:
            states = np.atleast_2d(
                np.asarray(initial_states, dtype=np.int64)
            ).copy()
            if states.shape != (batch, self.dim):
                raise ValueError(
                    f"initial states must have shape ({batch}, {self.dim}), "
                    f"got {states.shape}"
                )
        harvested = np.empty((batch, steps - washout, self.dim), dtype=np.int64)
        for t in range(steps):
            states = self.step_batch(states, u_seq[:, t, :])
            if t >= washout:
                harvested[:, t - washout, :] = states
        return harvested

    def run(
        self,
        inputs_q: np.ndarray,
        initial_state: np.ndarray | None = None,
        washout: int = 0,
    ) -> np.ndarray:
        """Harvest states with every recurrent product on hardware."""
        u_seq = np.atleast_2d(np.asarray(inputs_q, dtype=np.int64))
        if u_seq.shape[0] == 1 and u_seq.shape[1] != self.esn.n_inputs:
            u_seq = u_seq.T
        steps = u_seq.shape[0]
        if not 0 <= washout < steps:
            raise ValueError(f"washout {washout} out of range for {steps} steps")
        state = (
            np.zeros(self.dim, dtype=np.int64)
            if initial_state is None
            else np.asarray(initial_state, dtype=np.int64).copy()
        )
        states = np.empty((steps - washout, self.dim), dtype=np.int64)
        for t in range(steps):
            state = self.step(state, u_seq[t])
            if t >= washout:
                states[t - washout] = state
        return states

    def step_latency_s(self) -> float:
        """Modelled wall-clock latency of one recurrent product on the FPGA."""
        return self.multiplier.latency_s()

    def summary(self) -> str:
        return (
            f"HardwareESN dim={self.dim} backend={self.backend}\n"
            + self.multiplier.summary()
        )
