"""An integer ESN whose recurrent gemv runs on the compiled multiplier.

This closes the paper's loop: the reservoir's fixed recurrent matrix is
compiled once into the spatial bit-serial architecture, and every state
update's ``x(n-1)^T W`` product is produced by that hardware.  Two
execution backends are provided:

* ``backend="functional"`` — the multiplier's exact integer path (fast;
  bit-identical to the hardware by the library's own cross-validation);
* ``backend="gates"`` — the cycle-accurate gate-level simulator
  (vectorized engine, :mod:`repro.hwsim.fast`), stepping every serial
  adder of the compiled netlist each state update.

Because the multiplier computes row-vector-times-matrix (``o = a^T V``,
Eq. 3), the reservoir's update ``W x`` is expressed as ``x^T W^T``: the
*transpose* of the recurrent matrix is what gets compiled.
"""

from __future__ import annotations

import numpy as np

from repro.core.multiplier import FixedMatrixMultiplier
from repro.reservoir.quantize import IntegerESN

__all__ = ["HardwareESN"]

_BACKENDS = ("functional", "gates")


class HardwareESN:
    """Integer ESN bound to a compiled :class:`FixedMatrixMultiplier`.

    With ``include_input=True`` the *augmented* matrix ``[W^T ; W_in^T]``
    is compiled instead, and the whole pre-activation
    ``W x + W_in u`` comes out of the hardware in one product over the
    augmented vector ``[x, u]`` — no software matrix work remains in the
    state update (the paper's rectangular-matrix support at work).
    """

    def __init__(
        self,
        esn: IntegerESN,
        scheme: str = "csd",
        backend: str = "functional",
        rng: np.random.Generator | None = None,
        include_input: bool = False,
        input_quant_width: int = 8,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.esn = esn
        self.backend = backend
        self.include_input = include_input
        if include_input:
            matrix = np.vstack([esn.w_q.T, esn.w_in_q.T])
            stream_width = max(esn.state_width, input_quant_width)
        else:
            matrix = esn.w_q.T  # compile W^T so that x^T W^T == W x
            stream_width = esn.state_width
        self.multiplier = FixedMatrixMultiplier(
            matrix,
            input_width=stream_width,
            scheme=scheme,
            rng=rng,
        )
        self._circuit = None
        if backend == "gates":
            from repro.hwsim.fast import FastCircuit

            self._circuit = FastCircuit.from_compiled(self.multiplier.build_circuit())

    @property
    def dim(self) -> int:
        return self.esn.dim

    def _hardware_multiply(self, vector: np.ndarray) -> np.ndarray:
        if self.backend == "gates":
            return self._circuit.multiply(vector)
        return self.multiplier.multiply(vector)

    def recurrent_product(self, state: np.ndarray) -> np.ndarray:
        """``W_q x`` computed by the compiled hardware."""
        if self.include_input:
            raise RuntimeError(
                "include_input=True compiles the augmented matrix; use step()"
            )
        return self._hardware_multiply(state)

    def step(self, state: np.ndarray, u_q: np.ndarray) -> np.ndarray:
        if self.include_input:
            augmented = np.concatenate(
                [np.asarray(state, dtype=np.int64), np.atleast_1d(u_q)]
            )
            pre = self._hardware_multiply(augmented)
            return self.esn.activation(pre)
        return self.esn.step(state, u_q, recurrent_product=self.recurrent_product(state))

    def run(
        self,
        inputs_q: np.ndarray,
        initial_state: np.ndarray | None = None,
        washout: int = 0,
    ) -> np.ndarray:
        """Harvest states with every recurrent product on hardware."""
        u_seq = np.atleast_2d(np.asarray(inputs_q, dtype=np.int64))
        if u_seq.shape[0] == 1 and u_seq.shape[1] != self.esn.n_inputs:
            u_seq = u_seq.T
        steps = u_seq.shape[0]
        if not 0 <= washout < steps:
            raise ValueError(f"washout {washout} out of range for {steps} steps")
        state = (
            np.zeros(self.dim, dtype=np.int64)
            if initial_state is None
            else np.asarray(initial_state, dtype=np.int64).copy()
        )
        states = np.empty((steps - washout, self.dim), dtype=np.int64)
        for t in range(steps):
            state = self.step(state, u_seq[t])
            if t >= washout:
                states[t - washout] = state
        return states

    def step_latency_s(self) -> float:
        """Modelled wall-clock latency of one recurrent product on the FPGA."""
        return self.multiplier.latency_s()

    def summary(self) -> str:
        return (
            f"HardwareESN dim={self.dim} backend={self.backend}\n"
            + self.multiplier.summary()
        )
