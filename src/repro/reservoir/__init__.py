"""Echo State Network reservoir computing library (Sec. II of the paper)."""

from repro.reservoir.esn import EchoStateNetwork
from repro.reservoir.hw_esn import HardwareESN
from repro.reservoir.hw_readout import HardwareReadout
from repro.reservoir.metrics import (
    accuracy,
    memory_capacity,
    mse,
    nrmse,
    rmse,
    symbol_error_rate,
)
from repro.reservoir.pipeline import PipelineReport, ReservoirPipeline
from repro.reservoir.quantize import IntegerESN, quantize_esn, quantize_weights
from repro.reservoir.readout import RidgeReadout
from repro.reservoir.tasks import (
    ClassificationDataset,
    SequenceDataset,
    channel_equalization,
    mackey_glass,
    memory_capacity_dataset,
    multivariate_classification,
    narma10,
)
from repro.reservoir.weights import (
    random_input_weights,
    random_reservoir,
    rescale_spectral_radius,
    spectral_radius,
)

__all__ = [
    "EchoStateNetwork",
    "IntegerESN",
    "HardwareESN",
    "HardwareReadout",
    "RidgeReadout",
    "ReservoirPipeline",
    "PipelineReport",
    "quantize_esn",
    "quantize_weights",
    "random_reservoir",
    "random_input_weights",
    "spectral_radius",
    "rescale_spectral_radius",
    "narma10",
    "mackey_glass",
    "memory_capacity_dataset",
    "channel_equalization",
    "multivariate_classification",
    "SequenceDataset",
    "ClassificationDataset",
    "mse",
    "rmse",
    "nrmse",
    "memory_capacity",
    "symbol_error_rate",
    "accuracy",
]
