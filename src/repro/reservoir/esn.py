"""Echo State Network state evolution (Eqs. 1-2 of the paper).

::

    x(n) = f(W_in u(n) + W x(n-1))       (1)
    y(n) = W_out x(n)                    (2)

``W`` and ``W_in`` are fixed; only ``W_out`` is trained (see
:mod:`repro.reservoir.readout`).  The recurrent product ``W x(n-1)`` is
the gemv primitive the paper accelerates.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EchoStateNetwork"]


class EchoStateNetwork:
    """Floating-point reference ESN.

    Args:
        w: fixed recurrent matrix, shape (dim, dim).
        w_in: fixed input matrix, shape (dim, n_inputs).
        activation: elementwise nonlinearity ``f`` (default tanh).
        leak: leaky-integrator coefficient in (0, 1]; 1.0 is the paper's
            plain update.
    """

    def __init__(
        self,
        w: np.ndarray,
        w_in: np.ndarray,
        activation=np.tanh,
        leak: float = 1.0,
    ) -> None:
        self.w = np.asarray(w, dtype=float)
        self.w_in = np.asarray(w_in, dtype=float)
        if self.w.ndim != 2 or self.w.shape[0] != self.w.shape[1]:
            raise ValueError(f"W must be square, got {self.w.shape}")
        if self.w_in.ndim != 2 or self.w_in.shape[0] != self.w.shape[0]:
            raise ValueError(
                f"W_in shape {self.w_in.shape} incompatible with W {self.w.shape}"
            )
        if not 0.0 < leak <= 1.0:
            raise ValueError(f"leak must be in (0, 1], got {leak}")
        self.activation = activation
        self.leak = leak

    @property
    def dim(self) -> int:
        return self.w.shape[0]

    @property
    def n_inputs(self) -> int:
        return self.w_in.shape[1]

    def step(self, state: np.ndarray, u: np.ndarray) -> np.ndarray:
        """One application of Eq. 1."""
        pre = self.w_in @ np.atleast_1d(u) + self.w @ state
        new = self.activation(pre)
        if self.leak == 1.0:
            return new
        return (1.0 - self.leak) * state + self.leak * new

    def run(
        self,
        inputs: np.ndarray,
        initial_state: np.ndarray | None = None,
        washout: int = 0,
    ) -> np.ndarray:
        """Harvest states for an input sequence.

        Args:
            inputs: shape (timesteps,) or (timesteps, n_inputs).
            initial_state: starting ``x(0)`` (zeros by default).
            washout: number of leading states to drop (transient).

        Returns:
            states array of shape (timesteps - washout, dim).
        """
        u_seq = np.atleast_2d(np.asarray(inputs, dtype=float))
        if u_seq.shape[0] == 1 and u_seq.shape[1] != self.n_inputs:
            u_seq = u_seq.T
        if u_seq.shape[1] != self.n_inputs:
            raise ValueError(
                f"inputs have {u_seq.shape[1]} features, expected {self.n_inputs}"
            )
        steps = u_seq.shape[0]
        if not 0 <= washout < steps:
            raise ValueError(f"washout {washout} out of range for {steps} steps")
        state = (
            np.zeros(self.dim)
            if initial_state is None
            else np.asarray(initial_state, dtype=float).copy()
        )
        states = np.empty((steps - washout, self.dim))
        for t in range(steps):
            state = self.step(state, u_seq[t])
            if t >= washout:
                states[t - washout] = state
        return states
