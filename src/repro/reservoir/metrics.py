"""Evaluation metrics for reservoir tasks."""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "rmse", "nrmse", "memory_capacity", "symbol_error_rate", "accuracy"]


def mse(predictions: np.ndarray, targets: np.ndarray) -> float:
    p = np.asarray(predictions, dtype=float)
    t = np.asarray(targets, dtype=float)
    if p.shape != t.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
    return float(np.mean((p - t) ** 2))


def rmse(predictions: np.ndarray, targets: np.ndarray) -> float:
    return float(np.sqrt(mse(predictions, targets)))


def nrmse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """RMSE normalized by the target standard deviation."""
    t = np.asarray(targets, dtype=float)
    std = float(np.std(t))
    if std == 0:
        raise ValueError("targets have zero variance; NRMSE undefined")
    return rmse(predictions, t) / std


def memory_capacity(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Jaeger's MC: sum over delays of squared correlation coefficients."""
    p = np.atleast_2d(np.asarray(predictions, dtype=float))
    t = np.atleast_2d(np.asarray(targets, dtype=float))
    if p.shape != t.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
    total = 0.0
    for k in range(p.shape[1]):
        pk = p[:, k]
        tk = t[:, k]
        if np.std(pk) == 0 or np.std(tk) == 0:
            continue
        total += float(np.corrcoef(pk, tk)[0, 1] ** 2)
    return total


def symbol_error_rate(
    predictions: np.ndarray,
    targets: np.ndarray,
    symbols: np.ndarray | None = None,
) -> float:
    """Fraction of symbols decoded incorrectly after nearest-symbol slicing."""
    if symbols is None:
        symbols = np.array([-3.0, -1.0, 1.0, 3.0])
    p = np.asarray(predictions, dtype=float)
    t = np.asarray(targets, dtype=float)
    if p.shape != t.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
    sliced = symbols[np.argmin(np.abs(p[:, None] - symbols[None, :]), axis=1)]
    return float(np.mean(sliced != t))


def accuracy(predicted_labels: np.ndarray, labels: np.ndarray) -> float:
    p = np.asarray(predicted_labels)
    t = np.asarray(labels)
    if p.shape != t.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
    return float(np.mean(p == t))
