"""High-level train/evaluate pipeline for reservoir tasks.

``ReservoirPipeline`` wires the pieces a downstream user otherwise
assembles by hand — state harvesting with washout, chronological
train/test splitting, ridge readout training, and metric evaluation —
behind one object, for both float and hardware-backed integer reservoirs.

Example::

    pipeline = ReservoirPipeline(esn, washout=100, alpha=1e-4)
    report = pipeline.fit_evaluate(narma10(3000, rng))
    print(report.test_nrmse)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.reservoir.esn import EchoStateNetwork
from repro.reservoir.hw_esn import HardwareESN
from repro.reservoir.metrics import nrmse, symbol_error_rate
from repro.reservoir.quantize import IntegerESN
from repro.reservoir.readout import RidgeReadout
from repro.reservoir.tasks import SequenceDataset

__all__ = ["ReservoirPipeline", "PipelineReport"]


@dataclass(frozen=True)
class PipelineReport:
    """Outcome of one fit/evaluate run."""

    train_nrmse: float
    test_nrmse: float
    test_symbol_error_rate: float | None
    train_samples: int
    test_samples: int


class ReservoirPipeline:
    """Harvest -> split -> fit -> evaluate for one reservoir and task."""

    def __init__(
        self,
        reservoir: EchoStateNetwork | IntegerESN | HardwareESN,
        washout: int = 100,
        alpha: float = 1e-6,
        train_fraction: float = 0.7,
    ) -> None:
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0,1), got {train_fraction}")
        if washout < 0:
            raise ValueError(f"washout must be >= 0, got {washout}")
        self.reservoir = reservoir
        self.washout = washout
        self.alpha = alpha
        self.train_fraction = train_fraction
        self.readout = RidgeReadout(alpha=alpha)

    def _prepare_inputs(self, inputs: np.ndarray) -> np.ndarray:
        if isinstance(self.reservoir, (IntegerESN, HardwareESN)):
            esn = (
                self.reservoir.esn
                if isinstance(self.reservoir, HardwareESN)
                else self.reservoir
            )
            peak = float(np.max(np.abs(inputs))) or 1.0
            return esn.quantize_inputs(np.asarray(inputs, dtype=float) / peak)
        return np.asarray(inputs, dtype=float)

    def harvest(self, inputs: np.ndarray) -> np.ndarray:
        """Run the reservoir and return post-washout states as floats."""
        prepared = self._prepare_inputs(inputs)
        states = self.reservoir.run(prepared, washout=self.washout)
        return np.asarray(states, dtype=float)

    def fit_evaluate(
        self, dataset: SequenceDataset, symbols: np.ndarray | None = None
    ) -> PipelineReport:
        """Train the readout chronologically and evaluate on the tail.

        ``symbols`` enables symbol-error-rate reporting for equalization-
        style tasks; otherwise only NRMSE is reported.
        """
        states = self.harvest(dataset.inputs)
        targets = np.asarray(dataset.targets, dtype=float)[self.washout :]
        if len(states) != len(targets):
            raise ValueError(
                f"{len(states)} states but {len(targets)} targets after washout"
            )
        cut = int(len(states) * self.train_fraction)
        if cut < 1 or cut >= len(states):
            raise ValueError("train/test split leaves an empty partition")
        self.readout.fit(states[:cut], targets[:cut])
        train_pred = self.readout.predict(states[:cut])
        test_pred = self.readout.predict(states[cut:])
        ser = None
        if symbols is not None:
            ser = symbol_error_rate(test_pred, targets[cut:], symbols)
        return PipelineReport(
            train_nrmse=nrmse(train_pred, targets[:cut]),
            test_nrmse=nrmse(test_pred, targets[cut:]),
            test_symbol_error_rate=ser,
            train_samples=cut,
            test_samples=len(states) - cut,
        )

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Harvest fresh states and apply the trained readout."""
        return self.readout.predict(self.harvest(inputs))
