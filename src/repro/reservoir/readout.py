"""Linear readout training (Eq. 2).

"W_out is trained via linear regression [...] which completely eliminates
the need for error back-propagation and allows the designer to choose the
optimizer for the linear layer, which may be gradient-descent,
least-squares, or any other optimization technique." (Sec. II)

Ridge regression (Tikhonov-regularized least squares) is the standard
choice and the default here; plain least squares is ``alpha=0``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RidgeReadout"]


class RidgeReadout:
    """Ridge-regression readout ``y = W_out x (+ bias)``."""

    def __init__(self, alpha: float = 1e-6, fit_bias: bool = True) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self.fit_bias = fit_bias
        self.w_out: np.ndarray | None = None
        self.bias: np.ndarray | None = None

    def fit(self, states: np.ndarray, targets: np.ndarray) -> "RidgeReadout":
        """Solve ``min ||S W^T - Y||^2 + alpha ||W||^2`` in closed form."""
        s = np.asarray(states, dtype=float)
        y = np.asarray(targets, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        if s.shape[0] != y.shape[0]:
            raise ValueError(
                f"{s.shape[0]} states but {y.shape[0]} targets"
            )
        if self.fit_bias:
            s = np.hstack([s, np.ones((s.shape[0], 1))])
        gram = s.T @ s + self.alpha * np.eye(s.shape[1])
        solution = np.linalg.solve(gram, s.T @ y)
        if self.fit_bias:
            self.w_out = solution[:-1].T
            self.bias = solution[-1]
        else:
            self.w_out = solution.T
            self.bias = np.zeros(y.shape[1])
        return self

    def predict(self, states: np.ndarray) -> np.ndarray:
        """Apply Eq. 2 to harvested states."""
        if self.w_out is None:
            raise RuntimeError("readout is not fitted; call fit() first")
        s = np.asarray(states, dtype=float)
        out = s @ self.w_out.T + self.bias
        return out[:, 0] if out.shape[1] == 1 else out
