"""Benchmark task generators from the reservoir-computing literature.

These are the public workloads the paper's motivating references evaluate
on; no proprietary data is involved:

* :func:`narma10` — 10th-order nonlinear autoregressive moving average,
  the classic ESN system-identification task;
* :func:`mackey_glass` — chaotic delay-differential series (tau = 17);
* :func:`memory_capacity_dataset` — Jaeger's delayed-recall probe;
* :func:`channel_equalization` — the nonlinear channel of Jaeger & Haas,
  used by the FPGA-RC system in the paper's reference [3];
* :func:`multivariate_classification` — synthetic multivariate time-series
  classification in the style of Bianchi et al. [5] (the paper's baseline
  reservoir: dimension 800, 75% element sparsity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "narma10",
    "mackey_glass",
    "memory_capacity_dataset",
    "channel_equalization",
    "multivariate_classification",
    "SequenceDataset",
    "ClassificationDataset",
]


@dataclass(frozen=True)
class SequenceDataset:
    """An input sequence and its target sequence."""

    inputs: np.ndarray
    targets: np.ndarray
    name: str

    def split(self, train_fraction: float = 0.7) -> tuple["SequenceDataset", "SequenceDataset"]:
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        cut = int(len(self.inputs) * train_fraction)
        return (
            SequenceDataset(self.inputs[:cut], self.targets[:cut], self.name + "/train"),
            SequenceDataset(self.inputs[cut:], self.targets[cut:], self.name + "/test"),
        )


@dataclass(frozen=True)
class ClassificationDataset:
    """Variable-feature time series with one label per sequence."""

    sequences: np.ndarray  # (num, timesteps, features)
    labels: np.ndarray  # (num,)
    num_classes: int
    name: str


def narma10(length: int, rng: np.random.Generator | None = None) -> SequenceDataset:
    """10th-order NARMA system driven by uniform noise in [0, 0.5].

    y(t+1) = 0.3 y(t) + 0.05 y(t) sum_{i=0}^{9} y(t-i)
             + 1.5 u(t-9) u(t) + 0.1
    """
    if length < 20:
        raise ValueError(f"length must be >= 20, got {length}")
    rng = rng or np.random.default_rng(0)
    u = rng.uniform(0.0, 0.5, size=length)
    y = np.zeros(length)
    for t in range(9, length - 1):
        y[t + 1] = (
            0.3 * y[t]
            + 0.05 * y[t] * np.sum(y[t - 9 : t + 1])
            + 1.5 * u[t - 9] * u[t]
            + 0.1
        )
    return SequenceDataset(inputs=u, targets=y, name="narma10")


def mackey_glass(
    length: int,
    tau: int = 17,
    beta: float = 0.2,
    gamma: float = 0.1,
    n: int = 10,
    dt: float = 1.0,
    washout: int = 500,
    seed: int = 0,
) -> SequenceDataset:
    """Mackey-Glass chaotic series; target is the next-step value.

    Integrated with RK4 on the delay differential equation
    ``dx/dt = beta x(t - tau) / (1 + x(t - tau)^n) - gamma x(t)``.
    """
    if length < 2:
        raise ValueError(f"length must be >= 2, got {length}")
    history = int(np.ceil(tau / dt))
    total = length + washout + 1
    rng = np.random.default_rng(seed)
    series = np.zeros(total + history)
    series[:history] = 1.2 + 0.05 * rng.standard_normal(history)

    def derivative(x_now: float, x_delayed: float) -> float:
        return beta * x_delayed / (1.0 + x_delayed**n) - gamma * x_now

    for i in range(history, total + history - 1):
        delayed = series[i - history]
        x = series[i]
        k1 = derivative(x, delayed)
        k2 = derivative(x + 0.5 * dt * k1, delayed)
        k3 = derivative(x + 0.5 * dt * k2, delayed)
        k4 = derivative(x + dt * k3, delayed)
        series[i + 1] = x + dt / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)
    trimmed = series[history + washout :]
    u = trimmed[:length]
    y = trimmed[1 : length + 1]
    # Center around zero for tanh reservoirs.
    mean = trimmed.mean()
    return SequenceDataset(inputs=u - mean, targets=y - mean, name="mackey_glass")


def memory_capacity_dataset(
    length: int,
    max_delay: int,
    rng: np.random.Generator | None = None,
) -> SequenceDataset:
    """Jaeger's memory-capacity probe: recall u(t - k) for k = 1..max_delay.

    Targets have one column per delay; the memory capacity metric sums the
    squared correlation per column (see :func:`repro.reservoir.metrics.memory_capacity`).
    """
    if max_delay < 1:
        raise ValueError(f"max_delay must be >= 1, got {max_delay}")
    if length <= max_delay + 1:
        raise ValueError("length must exceed max_delay + 1")
    rng = rng or np.random.default_rng(0)
    u = rng.uniform(-0.8, 0.8, size=length)
    targets = np.zeros((length, max_delay))
    for k in range(1, max_delay + 1):
        targets[k:, k - 1] = u[:-k]
    return SequenceDataset(inputs=u, targets=targets, name=f"memory_capacity_{max_delay}")


def channel_equalization(
    length: int,
    snr_db: float = 24.0,
    rng: np.random.Generator | None = None,
) -> SequenceDataset:
    """Nonlinear channel equalization (Jaeger & Haas 2004; paper ref. [3]).

    A 4-level symbol sequence d(t) in {-3, -1, 1, 3} passes through a
    linear multipath filter, then a memoryless cubic nonlinearity plus
    noise; the task is to recover d(t - 2) from the observed signal u(t).
    """
    if length < 20:
        raise ValueError(f"length must be >= 20, got {length}")
    rng = rng or np.random.default_rng(0)
    d = rng.choice(np.array([-3.0, -1.0, 1.0, 3.0]), size=length + 10)
    taps = np.array(
        [0.08, -0.12, 1.0, 0.18, -0.1, 0.091, -0.05, 0.04, 0.03, -0.01]
    )
    # q(t) = sum_k taps[k] d(t + 2 - k): a mix of future and past symbols.
    q = np.zeros(length)
    for t in range(length):
        acc = 0.0
        for k, tap in enumerate(taps):
            idx = t + 2 - k
            if 0 <= idx < len(d):
                acc += tap * d[idx]
        q[t] = acc
    u = q + 0.036 * q**2 - 0.011 * q**3
    signal_power = float(np.mean(u**2))
    noise_power = signal_power / (10.0 ** (snr_db / 10.0))
    u = u + rng.normal(0.0, np.sqrt(noise_power), size=length)
    return SequenceDataset(inputs=u / np.max(np.abs(u)), targets=d[:length], name="channel_eq")


def multivariate_classification(
    num_sequences: int = 60,
    timesteps: int = 60,
    features: int = 3,
    num_classes: int = 3,
    noise: float = 0.25,
    rng: np.random.Generator | None = None,
) -> ClassificationDataset:
    """Synthetic multivariate time-series classification (Bianchi et al. style).

    Each class is a distinct multichannel frequency/phase signature plus
    noise; the reservoir's final state feeds a linear classifier.
    """
    if num_sequences < num_classes:
        raise ValueError("need at least one sequence per class")
    rng = rng or np.random.default_rng(0)
    t = np.linspace(0.0, 4.0 * np.pi, timesteps)
    class_freqs = 1.0 + np.arange(num_classes) * 0.75
    sequences = np.zeros((num_sequences, timesteps, features))
    labels = np.zeros(num_sequences, dtype=np.int64)
    for i in range(num_sequences):
        label = i % num_classes
        labels[i] = label
        for f in range(features):
            phase = rng.uniform(0.0, 2.0 * np.pi)
            sequences[i, :, f] = np.sin(class_freqs[label] * (f + 1) * 0.5 * t + phase)
        sequences[i] += noise * rng.standard_normal((timesteps, features))
    return ClassificationDataset(
        sequences=sequences,
        labels=labels,
        num_classes=num_classes,
        name="multivariate_synthetic",
    )
