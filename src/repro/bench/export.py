"""Export experiment results as CSV for downstream plotting."""

from __future__ import annotations

import csv
import io
import pathlib

from repro.bench.harness import ExperimentResult

__all__ = ["to_csv", "write_csv"]


def to_csv(result: ExperimentResult) -> str:
    """Render an experiment's rows as CSV text (union of columns)."""
    columns: list[str] = []
    for row in result.rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, extrasaction="ignore")
    writer.writeheader()
    for row in result.rows:
        writer.writerow({col: row.get(col, "") for col in columns})
    return buffer.getvalue()


def write_csv(result: ExperimentResult, directory: str | pathlib.Path) -> pathlib.Path:
    """Write ``<experiment_id>.csv`` into ``directory``; returns the path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.experiment_id}.csv"
    path.write_text(to_csv(result))
    return path
