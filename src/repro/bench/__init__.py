"""Experiment harness: one reproducible entry per paper table/figure."""

from repro.bench.ablations import ABLATIONS
from repro.bench.efficiency import efficiency_comparison, energy_per_product
from repro.bench.experiments import EXPERIMENTS
from repro.bench.export import to_csv, write_csv
from repro.bench.fpga_point import (
    FpgaDesignPoint,
    design_point_from_matrix,
    evaluation_design_point,
)
from repro.bench.harness import ExperimentResult, format_experiment, format_table
from repro.bench.shapes import (
    all_within_band,
    is_monotone_decreasing,
    is_monotone_increasing,
    linear_fit_r_squared,
    ratio,
    within_band,
)

__all__ = [
    "EXPERIMENTS",
    "ABLATIONS",
    "efficiency_comparison",
    "energy_per_product",
    "to_csv",
    "write_csv",
    "ExperimentResult",
    "format_experiment",
    "format_table",
    "FpgaDesignPoint",
    "design_point_from_matrix",
    "evaluation_design_point",
    "linear_fit_r_squared",
    "is_monotone_decreasing",
    "is_monotone_increasing",
    "within_band",
    "all_within_band",
    "ratio",
]
