"""One function per table/figure of the paper's evaluation.

Each function regenerates the workload, runs the reproduction's models and
simulators, and returns an :class:`~repro.bench.harness.ExperimentResult`
whose rows mirror the series the paper plots.  The ``benchmarks/`` suite
prints each result and asserts its qualitative shape
(:mod:`repro.bench.shapes`); EXPERIMENTS.md records paper-vs-measured.

Workload parameters follow the paper exactly where stated:

* Figs. 5-9: 64x64 matrices, 8-bit weights (Sec. IV-V);
* Figs. 10-12: dimensions 512 and 1024, signed 8-bit, element sparsity
  40-98%, PN and CSD recodings (Sec. VI);
* Figs. 13-18: V100 models, dimension sweep at 98% sparsity, sparsity
  sweep at 1024, batching at 95% (Sec. VII-A);
* Figs. 19-23: SIGMA simulator, same sweeps (Sec. VII-B).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.gpu import CUSPARSE, OPTIMIZED_KERNEL
from repro.baselines.sigma import SigmaSimulator
from repro.bench.fpga_point import FpgaDesignPoint, evaluation_design_point
from repro.bench.harness import ExperimentResult
from repro.core.bits import to_unsigned_bits
from repro.core.plan import plan_matrix
from repro.core.sparsity import bit_sparsity
from repro.core.stats import census_plan
from repro.fpga.mapping import MappingRules, map_census
from repro.workloads.matrices import bit_sparse_matrix, element_sparse_matrix

__all__ = [
    "table1_bitserial_addition",
    "fig05_bit_sparsity",
    "fig06_element_vs_bit_sparsity",
    "fig07_matrix_size",
    "fig08_bitwidth",
    "fig09_csd",
    "fig10_large_area",
    "fig11_frequency",
    "fig12_power",
    "fig13_14_gpu_dimension",
    "fig15_16_gpu_sparsity",
    "fig17_gpu_batching_1024",
    "fig18_gpu_batching_64",
    "fig19_20_sigma_dimension",
    "fig21_22_sigma_sparsity",
    "fig23_sigma_batching",
    "EXPERIMENTS",
]

EVAL_DIMS = (64, 128, 256, 512, 1024, 2048, 4096)
EVAL_SPARSITIES = (0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 0.98)
BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64)


# ---------------------------------------------------------------------------
# Table I — bit-serial addition example
# ---------------------------------------------------------------------------


def table1_bitserial_addition() -> ExperimentResult:
    """Table I: cycle-by-cycle bit-serial addition of 3 + 7 = 10."""
    a_value, b_value, width = 3, 7, 4
    a_bits = to_unsigned_bits(a_value, width)
    b_bits = to_unsigned_bits(b_value, width)
    rows = []
    carry = 0
    result_bits = []
    for cycle in range(width):
        a = a_bits[cycle]
        b = b_bits[cycle]
        total = a + b + carry
        s = total & 1
        cout = total >> 1
        result_bits.append(s)
        # The paper displays the result shift register with the newest bit
        # entering on the left: 0000 -> 1000 -> 0100 -> 1010.
        shown = list(reversed(result_bits)) + [0] * (width - len(result_bits))
        rows.append(
            {
                "cycle": cycle + 1,
                "cin": carry,
                "a": a,
                "b": b,
                "s": s,
                "cout": cout,
                "result": "".join(str(bit) for bit in shown),
            }
        )
        carry = cout
    decoded = sum(bit << i for i, bit in enumerate(result_bits))
    return ExperimentResult(
        experiment_id="table1",
        title="Bit-serial addition example (3 + 7 = 10)",
        rows=rows,
        notes=[f"decoded result = {decoded} (expected 10)"],
    )


# ---------------------------------------------------------------------------
# Sec. IV — RTL synthesis results (Figs. 5-8)
# ---------------------------------------------------------------------------


def _resources_for(matrix: np.ndarray, input_width: int = 8, scheme: str = "pn"):
    plan = plan_matrix(matrix, input_width=input_width, scheme=scheme)
    census = census_plan(plan)
    return census, map_census(census, MappingRules())


def fig05_bit_sparsity(dim: int = 64, width: int = 8, seed: int = 5) -> ExperimentResult:
    """Fig. 5: LUT/FF/LUTRAM utilization vs bit-sparsity of a 64x64 matrix."""
    rng = np.random.default_rng(seed)
    rows = []
    for sparsity_pct in range(0, 101, 10):
        matrix = bit_sparse_matrix(dim, dim, width, sparsity_pct / 100.0, rng)
        census, resources = _resources_for(matrix)
        rows.append(
            {
                "bit_sparsity_pct": sparsity_pct,
                "ones": census.ones,
                "lut": resources.luts,
                "ff": resources.ffs,
                "lutram": resources.lutrams,
            }
        )
    return ExperimentResult(
        experiment_id="fig05",
        title=f"Hardware utilization vs bit-sparsity ({dim}x{dim}, {width}-bit)",
        rows=rows,
        notes=["expected shape: LUT/FF linear in ones; LUTRAM flat"],
    )


def fig06_element_vs_bit_sparsity(
    dim: int = 64, width: int = 8, seed: int = 6
) -> ExperimentResult:
    """Fig. 6: element-sparse matrices cost the same as bit-sparse ones.

    Element-sparse matrices are generated, converted to their equivalent
    bit-sparsity, and compared against bit-sparse matrices generated at
    exactly that bit-sparsity.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for es_pct in (0, 20, 40, 60, 80, 90, 95, 100):
        es_matrix = element_sparse_matrix(
            dim, dim, width, es_pct / 100.0, rng, signed=False
        )
        equivalent_bs = bit_sparsity(es_matrix, width)
        bs_matrix = bit_sparse_matrix(dim, dim, width, equivalent_bs, rng)
        __, es_resources = _resources_for(es_matrix)
        __, bs_resources = _resources_for(bs_matrix)
        rows.append(
            {
                "element_sparsity_pct": es_pct,
                "bit_sparsity_pct": round(equivalent_bs * 100.0, 1),
                "lut_es": es_resources.luts,
                "lut_bs": bs_resources.luts,
                "ff_es": es_resources.ffs,
                "ff_bs": bs_resources.ffs,
                "lutram_es": es_resources.lutrams,
                "lutram_bs": bs_resources.lutrams,
            }
        )
    return ExperimentResult(
        experiment_id="fig06",
        title="Element-sparse vs bit-sparse cost at matched bit-sparsity",
        rows=rows,
        notes=["expected shape: the two schemes cost the same within noise"],
    )


def fig07_matrix_size(width: int = 8, seed: int = 7) -> ExperimentResult:
    """Fig. 7: utilization vs matrix size for random 8-bit matrices."""
    rng = np.random.default_rng(seed)
    rows = []
    for dim in (2, 4, 8, 16, 32, 64, 128):
        matrix = element_sparse_matrix(dim, dim, width, 0.0, rng, signed=False)
        census, resources = _resources_for(matrix)
        rows.append(
            {
                "dim": dim,
                "elements": dim * dim,
                "ones": census.ones,
                "lut": resources.luts,
                "ff": resources.ffs,
            }
        )
    return ExperimentResult(
        experiment_id="fig07",
        title="Hardware utilization vs matrix size (random 8-bit)",
        rows=rows,
        notes=["expected shape: cost quadratic in dim, i.e. linear in elements"],
    )


def fig08_bitwidth(dim: int = 64, seed: int = 8) -> ExperimentResult:
    """Fig. 8: utilization of a 64x64 random matrix vs weight bitwidth."""
    rng = np.random.default_rng(seed)
    rows = []
    for width in (1, 2, 4, 8, 16, 32):
        matrix = element_sparse_matrix(dim, dim, width, 0.0, rng, signed=False)
        census, resources = _resources_for(matrix)
        rows.append(
            {
                "bitwidth": width,
                "ones": census.ones,
                "lut": resources.luts,
                "ff": resources.ffs,
            }
        )
    return ExperimentResult(
        experiment_id="fig08",
        title="Hardware utilization vs weight bitwidth (64x64)",
        rows=rows,
        notes=["expected shape: cost linear in bitwidth"],
    )


# ---------------------------------------------------------------------------
# Sec. V — Canonical Signed Digit (Fig. 9)
# ---------------------------------------------------------------------------


def fig09_csd(dim: int = 64, width: int = 8, seed: int = 9) -> ExperimentResult:
    """Fig. 9: CSD vs naive (V) resource utilization, element-sparse 64x64."""
    rng = np.random.default_rng(seed)
    rows = []
    for es_pct in (0, 25, 50, 75, 90, 100):
        matrix = element_sparse_matrix(dim, dim, width, es_pct / 100.0, rng, signed=True)
        __, v_resources = _resources_for(matrix, scheme="pn")
        __, csd_resources = _resources_for(matrix, scheme="csd")
        saving = (
            1.0 - csd_resources.luts / v_resources.luts if v_resources.luts else 0.0
        )
        rows.append(
            {
                "element_sparsity_pct": es_pct,
                "lut_v": v_resources.luts,
                "lut_csd": csd_resources.luts,
                "ff_v": v_resources.ffs,
                "ff_csd": csd_resources.ffs,
                "lutram_v": v_resources.lutrams,
                "lutram_csd": csd_resources.lutrams,
                "lut_saving_pct": round(saving * 100.0, 1),
            }
        )
    return ExperimentResult(
        experiment_id="fig09",
        title="CSD vs naive resource utilization (64x64 element-sparse)",
        rows=rows,
        notes=["expected shape: CSD strictly cheaper, ~17% LUT savings"],
    )


# ---------------------------------------------------------------------------
# Sec. VI — large-scale design results (Figs. 10-12)
# ---------------------------------------------------------------------------

LARGE_SCALE_POINTS: tuple[tuple[int, float], ...] = tuple(
    [(512, s / 100.0) for s in (40, 50, 60, 70, 80, 90, 95, 98)]
    + [(1024, s / 100.0) for s in (60, 70, 80, 90, 95, 98)]
)
"""The paper's Sec. VI sweep: 512 from 40%, 1024 from 60% ("matrices with
up to 1.5 million ones, as large as 1024x1024 eight-bit matrix at a
sparsity of 60%")."""


def _large_scale_rows() -> list[dict]:
    rows = []
    for dim, sparsity in LARGE_SCALE_POINTS:
        for scheme in ("pn", "csd"):
            point = evaluation_design_point(dim, sparsity, scheme)
            rows.append(
                {
                    "dim": dim,
                    "element_sparsity_pct": round(sparsity * 100.0),
                    "scheme": scheme,
                    "ones": point.ones,
                    "lut": point.luts,
                    "ff": point.ffs,
                    "fits": point.fits,
                    "slr_span": point.slr_span,
                    "fmax_mhz": round(point.fmax_hz / 1e6, 1),
                    "power_w": round(point.power_w, 1),
                }
            )
    return rows


def fig10_large_area() -> ExperimentResult:
    """Fig. 10: LUT and FF counts vs matrix ones (512/1024, PN and CSD)."""
    return ExperimentResult(
        experiment_id="fig10",
        title="Large-scale area: FPGA resources vs matrix ones",
        rows=_large_scale_rows(),
        notes=[
            "expected shape: LUTs ~ ones (slope ~1), FFs ~ 2x LUTs",
            "CSD reduces ones and resources for the same signed matrix",
        ],
    )


def fig11_frequency() -> ExperimentResult:
    """Fig. 11: achieved Fmax vs design size / SLR occupancy."""
    return ExperimentResult(
        experiment_id="fig11",
        title="Large-scale frequency: Fmax vs LUTs and SLR span",
        rows=_large_scale_rows(),
        notes=[
            "expected bands: 445-600 MHz in 1 SLR, 296-400 in 2, 225-250 beyond",
        ],
    )


def fig12_power() -> ExperimentResult:
    """Fig. 12: total power at Fmax vs matrix ones."""
    return ExperimentResult(
        experiment_id="fig12",
        title="Large-scale power at maximum achievable frequency",
        rows=_large_scale_rows(),
        notes=[
            "expected shape: sublinear growth; approaches ~150 W thermal limit "
            "at high dimension and low sparsity",
        ],
    )


# ---------------------------------------------------------------------------
# Sec. VII-A — GPU comparison (Figs. 13-18)
# ---------------------------------------------------------------------------


def _gpu_row(
    dim: int,
    sparsity: float,
    point: FpgaDesignPoint,
    batch: int = 1,
) -> dict:
    density = 1.0 - sparsity
    fpga_s = point.batch_latency_s(batch)
    cusparse_s = CUSPARSE.spmm_latency_s(dim, density, batch)
    optimized_s = OPTIMIZED_KERNEL.spmm_latency_s(dim, density, batch)
    return {
        "dim": dim,
        "element_sparsity_pct": round(sparsity * 100.0),
        "batch": batch,
        "fpga_ns": round(fpga_s * 1e9, 1),
        "cusparse_ns": round(cusparse_s * 1e9, 1),
        "optimized_ns": round(optimized_s * 1e9, 1),
        "speedup_cusparse": round(cusparse_s / fpga_s, 1),
        "speedup_optimized": round(optimized_s / fpga_s, 1),
    }


def fig13_14_gpu_dimension(sparsity: float = 0.98) -> ExperimentResult:
    """Figs. 13-14: latency and speedup vs dimension at 98% sparsity."""
    rows = []
    for dim in EVAL_DIMS:
        point = evaluation_design_point(dim, sparsity, "csd")
        rows.append(_gpu_row(dim, sparsity, point))
    return ExperimentResult(
        experiment_id="fig13_14",
        title="GPU comparison: latency/speedup vs dimension (98% sparse)",
        rows=rows,
        notes=[
            "expected shape: FPGA < 150 ns everywhere; GPU > 1 us everywhere",
            "speedup high when GPU latency-bound, levelling near ~50-70x at 4096",
        ],
    )


def fig15_16_gpu_sparsity(dim: int = 1024) -> ExperimentResult:
    """Figs. 15-16: latency and speedup vs sparsity at 1024x1024."""
    rows = []
    for sparsity in EVAL_SPARSITIES:
        point = evaluation_design_point(dim, sparsity, "csd")
        rows.append(_gpu_row(dim, sparsity, point))
    return ExperimentResult(
        experiment_id="fig15_16",
        title="GPU comparison: latency/speedup vs sparsity (1024x1024)",
        rows=rows,
        notes=[
            "expected shape: GPU latency falls with sparsity then levels off "
            "(underutilization); FPGA < 150 ns throughout",
        ],
    )


def _gpu_batching(dim: int, sparsity: float) -> list[dict]:
    point = evaluation_design_point(dim, sparsity, "csd")
    return [_gpu_row(dim, sparsity, point, batch) for batch in BATCH_SIZES]


def fig17_gpu_batching_1024() -> ExperimentResult:
    """Fig. 17: speedup vs batch size, 1024x1024 at 95% sparsity."""
    return ExperimentResult(
        experiment_id="fig17",
        title="GPU batching: speedup vs batch size (1024x1024, 95%)",
        rows=_gpu_batching(1024, 0.95),
        notes=[
            "expected shape: FPGA scales linearly in batch, GPU sublinearly; "
            "speedup decreases with batch but stays >= 1 at batch 64",
        ],
    )


def fig18_gpu_batching_64() -> ExperimentResult:
    """Fig. 18: speedup vs batch size, 64x64 at 95% sparsity."""
    return ExperimentResult(
        experiment_id="fig18",
        title="GPU batching: speedup vs batch size (64x64, 95%)",
        rows=_gpu_batching(64, 0.95),
        notes=[
            "expected shape: small matrix leaves the GPU underutilized longer; "
            "speedup still decreases with batch and stays >= 1 at batch 64",
        ],
    )


# ---------------------------------------------------------------------------
# Sec. VII-B — SIGMA comparison (Figs. 19-23)
# ---------------------------------------------------------------------------


def _sigma_row(
    simulator: SigmaSimulator,
    dim: int,
    sparsity: float,
    point: FpgaDesignPoint,
    batch: int = 1,
) -> dict:
    nnz = int(round(dim * dim * (1.0 - sparsity)))
    breakdown = simulator.simulate(dim, nnz, batch)
    sigma_s = breakdown.latency_s(simulator.config.clock_hz)
    fpga_s = point.batch_latency_s(batch)
    return {
        "dim": dim,
        "element_sparsity_pct": round(sparsity * 100.0),
        "batch": batch,
        "nnz": nnz,
        "tiles": breakdown.tiles,
        "tiled": simulator.is_tiled(nnz),
        "sigma_ns": round(sigma_s * 1e9, 1),
        "fpga_ns": round(fpga_s * 1e9, 1),
        "speedup": round(sigma_s / fpga_s, 2),
    }


def fig19_20_sigma_dimension(sparsity: float = 0.98) -> ExperimentResult:
    """Figs. 19-20: SIGMA vs FPGA latency/speedup across dimensions."""
    simulator = SigmaSimulator()
    rows = []
    for dim in EVAL_DIMS:
        point = evaluation_design_point(dim, sparsity, "csd")
        rows.append(_sigma_row(simulator, dim, sparsity, point))
    return ExperimentResult(
        experiment_id="fig19_20",
        title="SIGMA comparison: latency/speedup vs dimension (98% sparse)",
        rows=rows,
        notes=[
            "expected shape: SIGMA ns-scale while nnz fits the PE grid, "
            "memory-bound linear scaling once tiled (> 1024); worst-case "
            "FPGA advantage a few x, >15x at 4096",
        ],
    )


def fig21_22_sigma_sparsity(dim: int = 1024) -> ExperimentResult:
    """Figs. 21-22: SIGMA vs FPGA latency/speedup across sparsities."""
    simulator = SigmaSimulator()
    rows = []
    for sparsity in (0.70, 0.80, 0.90, 0.95, 0.98):
        point = evaluation_design_point(dim, sparsity, "csd")
        rows.append(_sigma_row(simulator, dim, sparsity, point))
    return ExperimentResult(
        experiment_id="fig21_22",
        title="SIGMA comparison: latency/speedup vs sparsity (1024x1024)",
        rows=rows,
        notes=[
            "expected shape: 90% sparsity and below pushes SIGMA into the "
            "microsecond regime; speedup decreases toward high sparsity",
        ],
    )


def fig23_sigma_batching(dim: int = 1024, sparsity: float = 0.95) -> ExperimentResult:
    """Fig. 23: SIGMA batching speedup (1024x1024, 95% sparse)."""
    simulator = SigmaSimulator()
    point = evaluation_design_point(dim, sparsity, "csd")
    rows = [
        _sigma_row(simulator, dim, sparsity, point, batch) for batch in BATCH_SIZES
    ]
    return ExperimentResult(
        experiment_id="fig23",
        title="SIGMA batching: speedup vs batch size (1024x1024, 95%)",
        rows=rows,
        notes=[
            "expected shape: speedup decreases with batch and saturates at a "
            "few x (the paper reports 5.4x)",
        ],
    )


EXPERIMENTS = {
    "table1": table1_bitserial_addition,
    "fig05": fig05_bit_sparsity,
    "fig06": fig06_element_vs_bit_sparsity,
    "fig07": fig07_matrix_size,
    "fig08": fig08_bitwidth,
    "fig09": fig09_csd,
    "fig10": fig10_large_area,
    "fig11": fig11_frequency,
    "fig12": fig12_power,
    "fig13_14": fig13_14_gpu_dimension,
    "fig15_16": fig15_16_gpu_sparsity,
    "fig17": fig17_gpu_batching_1024,
    "fig18": fig18_gpu_batching_64,
    "fig19_20": fig19_20_sigma_dimension,
    "fig21_22": fig21_22_sigma_sparsity,
    "fig23": fig23_sigma_batching,
}
"""Registry of every reproduced table/figure, keyed by experiment id."""
