"""FPGA design points: one fully-evaluated matrix configuration.

A design point bundles everything the evaluation figures need about one
compiled matrix — ones, mapped resources, SLR span, achievable frequency,
Eq. 5 latency, and modelled power — with an infeasible marker for
configurations that exceed the device (the paper's sweeps stop where the
matrix no longer fits: "matrices with up to 1.5 million ones, as large as
1024x1024 eight-bit matrix at a sparsity of 60%").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - layering: bench must not pull serve in
    from repro.serve.cache import CompileCache

from repro.core.latency import latency_cycles
from repro.core.plan import plan_matrix
from repro.core.serialize import matrix_digest
from repro.core.stats import census_plan
from repro.fpga.device import XCVU13P, DesignDoesNotFitError, FpgaDevice
from repro.fpga.mapping import MappingRules, map_census
from repro.fpga.power import DEFAULT_POWER
from repro.fpga.timing import DEFAULT_TIMING
from repro.workloads.matrices import element_sparse_matrix

__all__ = ["FpgaDesignPoint", "design_point_from_matrix", "evaluation_design_point"]


@dataclass(frozen=True)
class FpgaDesignPoint:
    """One compiled configuration, evaluated through every FPGA model."""

    dim: int
    element_sparsity: float
    scheme: str
    ones: int
    luts: int
    ffs: int
    lutrams: int
    fits: bool
    slr_span: int
    fmax_hz: float
    cycles: int
    power_w: float

    @property
    def latency_s(self) -> float:
        if not self.fits:
            raise DesignDoesNotFitError(
                f"{self.dim}x{self.dim} @ {self.element_sparsity:.0%} does not fit"
            )
        return self.cycles / self.fmax_hz

    @property
    def latency_ns(self) -> float:
        return self.latency_s * 1e9

    def batch_latency_s(self, batch: int) -> float:
        """Sequential vector products (see repro.core.latency.batch_cycles)."""
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        return batch * self.latency_s


# Content-addressed reuse across *all* callers: any two sweeps that hand
# in the same matrix bytes and compile options share one evaluated point,
# even when they generated the matrix independently.  The old reuse path
# (evaluation_design_point's lru_cache) only deduplicated calls with
# identical scalar arguments; keying on repro.core.serialize.matrix_digest
# makes the reuse principled and cross-call-site.
_POINT_CACHE: dict[tuple, FpgaDesignPoint] = {}
_POINT_CACHE_CAPACITY = 256


def design_point_from_matrix(
    matrix: np.ndarray,
    element_sparsity: float,
    input_width: int = 8,
    scheme: str = "csd",
    device: FpgaDevice = XCVU13P,
    seed: int = 0,
    cache: "CompileCache | None" = None,
) -> FpgaDesignPoint:
    """Compile and evaluate one matrix through the full FPGA model stack.

    Results are memoized on the matrix content digest plus the compile
    options, so repeated evaluations of the same configuration skip the
    recompile entirely (CSD recoding and the census dominate the cost).

    With ``cache`` (a :class:`repro.serve.cache.CompileCache`), planning
    goes through the serve layer's plan memo and artifact store instead:
    a sweep evaluating matrices that are also deployed for serving — or
    re-evaluating against a warm artifact directory — re-plans nothing.
    Cache-backed planning is deterministic (``rng=None``), so it keys
    separately from the seeded default path, whose CSD coin flips depend
    on ``seed``.
    """
    # Cache-backed planning ignores ``seed`` (it is deterministic), so
    # normalize it out of the key: N seeds share one evaluation.
    key = (
        matrix_digest(matrix),
        round(float(element_sparsity), 12),
        input_width,
        scheme,
        device.name,
        None if cache is not None else seed,
        "deterministic" if cache is not None else "seeded",
    )
    cached = _POINT_CACHE.get(key)
    if cached is not None:
        return cached
    if cache is not None:
        plan = cache.get_plan(matrix, input_width=input_width, scheme=scheme)
    else:
        rng = np.random.default_rng(seed)
        plan = plan_matrix(matrix, input_width=input_width, scheme=scheme, rng=rng)
    census = census_plan(plan)
    resources = map_census(census, MappingRules())
    cycles = latency_cycles(plan.input_width, plan.nominal_weight_width, plan.rows)
    ones = census.ones
    try:
        estimate = DEFAULT_TIMING.estimate(
            resources.luts, plan.rows, device, fanout=ones / plan.rows
        )
        fits = device.fits(resources.luts, resources.ffs, resources.lutrams)
        fmax = estimate.fmax_hz
        span = estimate.slr_span
        power = DEFAULT_POWER.total_w(ones, fmax)
    except DesignDoesNotFitError:
        fits = False
        fmax = float("nan")
        span = 0
        power = float("nan")
    point = FpgaDesignPoint(
        dim=plan.rows,
        element_sparsity=element_sparsity,
        scheme=scheme,
        ones=ones,
        luts=resources.luts,
        ffs=resources.ffs,
        lutrams=resources.lutrams,
        fits=fits,
        slr_span=span,
        fmax_hz=fmax,
        cycles=cycles,
        power_w=power,
    )
    if len(_POINT_CACHE) >= _POINT_CACHE_CAPACITY:
        _POINT_CACHE.pop(next(iter(_POINT_CACHE)))
    _POINT_CACHE[key] = point
    return point


@lru_cache(maxsize=64)
def evaluation_design_point(
    dim: int,
    element_sparsity: float,
    scheme: str = "csd",
    input_width: int = 8,
    weight_width: int = 8,
    seed: int = 0,
) -> FpgaDesignPoint:
    """Cached design point on the paper's evaluation workload.

    The evaluation sections all use random element-sparse matrices with
    signed ``weight_width``-bit weights; the cache keeps repeated sweeps
    (e.g. Figs. 10, 11 and 12 share one) from recompiling.
    """
    rng = np.random.default_rng(seed + dim)
    matrix = element_sparse_matrix(
        dim, dim, weight_width, element_sparsity, rng, signed=True
    )
    return design_point_from_matrix(
        matrix, element_sparsity, input_width=input_width, scheme=scheme, seed=seed
    )
