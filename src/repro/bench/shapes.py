"""Qualitative shape assertions for reproduced experiments.

The reproduction's substrate is a simulator, not the authors' testbed, so
absolute numbers are not expected to match the paper.  What must hold is
the *shape* of every result: who wins, by roughly what factor, where the
crossovers and regime changes fall.  These helpers express those checks.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "linear_fit_r_squared",
    "is_monotone_decreasing",
    "is_monotone_increasing",
    "within_band",
    "all_within_band",
    "ratio",
]


def linear_fit_r_squared(xs, ys) -> float:
    """R-squared of the least-squares line through (xs, ys)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two matching points")
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    return 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot


def is_monotone_decreasing(values, tolerance: float = 0.0) -> bool:
    """True if each value is <= the previous (within a relative tolerance)."""
    seq = [float(v) for v in values]
    return all(
        b <= a * (1.0 + tolerance) for a, b in zip(seq, seq[1:])
    )


def is_monotone_increasing(values, tolerance: float = 0.0) -> bool:
    seq = [float(v) for v in values]
    return all(
        b >= a * (1.0 - tolerance) for a, b in zip(seq, seq[1:])
    )


def within_band(value: float, lo: float, hi: float) -> bool:
    """Inclusive band check."""
    if lo > hi:
        raise ValueError(f"empty band [{lo}, {hi}]")
    return lo <= float(value) <= hi


def all_within_band(values, lo: float, hi: float) -> bool:
    return all(within_band(v, lo, hi) for v in values)


def ratio(numerator: float, denominator: float) -> float:
    if denominator == 0:
        raise ValueError("ratio denominator is zero")
    return float(numerator) / float(denominator)
