"""Energy-efficiency analysis (Sec. VII-A's power discussion, quantified).

The paper stops short of a power comparison ("it is very difficult to
accurately compare power consumption between these two solutions") but
argues "the efficiency gains shown here are due to fundamental
computational simplification, and it would be reasonable to assume that
the dynamic power would be correspondingly lower."

This module quantifies that argument on the reproduction's own models:
energy per product = modelled power x modelled latency, for the FPGA
(Fig. 12 power model at achieved Fmax) versus the V100 kernels (TDP-based
bound, the paper's 300 W figure) — with the caveats the paper lists spelled
out in the result notes.
"""

from __future__ import annotations

from repro.baselines.gpu import CUSPARSE, OPTIMIZED_KERNEL, V100
from repro.bench.fpga_point import evaluation_design_point
from repro.bench.harness import ExperimentResult

__all__ = ["energy_per_product", "efficiency_comparison"]


def energy_per_product(power_w: float, latency_s: float) -> float:
    """Energy in joules for one vector-matrix product."""
    if power_w < 0 or latency_s < 0:
        raise ValueError("power and latency must be non-negative")
    return power_w * latency_s


def efficiency_comparison(sparsity: float = 0.98) -> ExperimentResult:
    """Energy per gemv across dimensions: FPGA model vs V100 TDP bound."""
    rows = []
    for dim in (64, 256, 1024, 2048):
        point = evaluation_design_point(dim, sparsity, "csd")
        fpga_energy = energy_per_product(point.power_w, point.latency_s)
        density = 1.0 - sparsity
        gpu_best_s = min(
            CUSPARSE.gemv_latency_s(dim, density),
            OPTIMIZED_KERNEL.gemv_latency_s(dim, density),
        )
        gpu_energy = energy_per_product(V100.tdp_w, gpu_best_s)
        rows.append(
            {
                "dim": dim,
                "fpga_power_w": round(point.power_w, 1),
                "fpga_latency_ns": round(point.latency_ns, 1),
                "fpga_uj": round(fpga_energy * 1e6, 3),
                "gpu_power_w": V100.tdp_w,
                "gpu_latency_ns": round(gpu_best_s * 1e9, 1),
                "gpu_uj": round(gpu_energy * 1e6, 3),
                "energy_gain": round(gpu_energy / fpga_energy, 1),
            }
        )
    return ExperimentResult(
        experiment_id="efficiency",
        title=f"Energy per product, FPGA vs V100 TDP bound ({sparsity:.0%} sparse)",
        rows=rows,
        notes=[
            "GPU energy uses TDP (the paper's 300 W figure) as an upper bound; "
            "the paper's caveats (process node, peripherals, activity, rails) "
            "apply — this quantifies the *fundamental computational "
            "simplification* argument, not a measurement",
        ],
    )
