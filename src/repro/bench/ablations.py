"""Ablation studies on the reproduction's design choices.

These go beyond the paper's figures and quantify the decisions DESIGN.md
documents:

* **recoding** — PN vs the paper's Listing 1 CSD vs the optimal NAF
  (how much is left on the table by the chain-based recoder?);
* **tree style** — the paper-literal padded trees vs the
  measurement-consistent compact trees (the alignment-flop blow-up);
* **broadcast pipelining** — Sec. VIII's proposed registered fanout and
  chiplet crossings: frequency recovered vs latency cycles added;
* **CGRA projection** — Sec. VIII's hard serial-adder grid: density and
  frequency gains plus matrix-swap cost under pipeline reconfiguration.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentResult
from repro.core.latency import latency_cycles
from repro.core.plan import plan_matrix
from repro.core.stats import census_plan
from repro.fpga.cgra import DEFAULT_CGRA, compare_fpga_cgra
from repro.fpga.mapping import MappingRules, map_census
from repro.fpga.timing import DEFAULT_TIMING
from repro.workloads.matrices import element_sparse_matrix

__all__ = [
    "ablation_recoding",
    "ablation_tree_style",
    "ablation_pipelined_broadcast",
    "ablation_cgra",
    "ablation_tiling",
    "ABLATIONS",
]


def ablation_recoding(dim: int = 64, width: int = 8, seed: int = 101) -> ExperimentResult:
    """PN vs CSD (Listing 1) vs NAF ones/LUTs across element sparsities."""
    rng = np.random.default_rng(seed)
    rows = []
    for es_pct in (0, 25, 50, 75, 90):
        matrix = element_sparse_matrix(dim, dim, width, es_pct / 100.0, rng, signed=True)
        by_scheme = {}
        for scheme in ("pn", "csd", "naf"):
            plan = plan_matrix(matrix, scheme=scheme, rng=np.random.default_rng(seed))
            census = census_plan(plan)
            by_scheme[scheme] = (census.ones, map_census(census).luts)
        rows.append(
            {
                "element_sparsity_pct": es_pct,
                "ones_pn": by_scheme["pn"][0],
                "ones_csd": by_scheme["csd"][0],
                "ones_naf": by_scheme["naf"][0],
                "lut_pn": by_scheme["pn"][1],
                "lut_csd": by_scheme["csd"][1],
                "lut_naf": by_scheme["naf"][1],
                "csd_saving_pct": round(
                    100.0 * (1 - by_scheme["csd"][0] / by_scheme["pn"][0]), 1
                )
                if by_scheme["pn"][0]
                else 0.0,
                "naf_saving_pct": round(
                    100.0 * (1 - by_scheme["naf"][0] / by_scheme["pn"][0]), 1
                )
                if by_scheme["pn"][0]
                else 0.0,
            }
        )
    return ExperimentResult(
        experiment_id="ablation_recoding",
        title="Recoding ablation: PN vs Listing-1 CSD vs optimal NAF",
        rows=rows,
        notes=["NAF lower-bounds any chain recoder; Listing 1 should sit close"],
    )


def ablation_tree_style(width: int = 8, seed: int = 102) -> ExperimentResult:
    """Compact vs padded trees: the alignment-flop cost of Sec. III taken
    literally, as a function of sparsity and dimension."""
    rng = np.random.default_rng(seed)
    rows = []
    for dim, es_pct in ((64, 50), (64, 90), (128, 90), (128, 98), (256, 98)):
        matrix = element_sparse_matrix(dim, dim, width, es_pct / 100.0, rng, signed=True)
        stats = {}
        for style in ("compact", "padded"):
            census = census_plan(plan_matrix(matrix, tree_style=style))
            report = map_census(census, MappingRules())
            stats[style] = (census.serial_adders, census.dffs, report.ffs)
        rows.append(
            {
                "dim": dim,
                "element_sparsity_pct": es_pct,
                "adders": stats["compact"][0],
                "dffs_compact": stats["compact"][1],
                "dffs_padded": stats["padded"][1],
                "ff_compact": stats["compact"][2],
                "ff_padded": stats["padded"][2],
                "ff_blowup": round(stats["padded"][2] / stats["compact"][2], 2),
            }
        )
    return ExperimentResult(
        experiment_id="ablation_tree_style",
        title="Tree-style ablation: compact vs paper-literal padded alignment",
        rows=rows,
        notes=[
            "adder counts are identical by construction; only alignment "
            "flip-flops differ, exploding for padded trees at high sparsity",
        ],
    )


def ablation_pipelined_broadcast(seed: int = 103) -> ExperimentResult:
    """Sec. VIII's registered broadcast: Fmax recovered vs cycles added."""
    rng = np.random.default_rng(seed)
    rows = []
    for dim, es_pct in ((512, 70), (1024, 80), (1024, 70), (1024, 60)):
        matrix = element_sparse_matrix(dim, dim, 8, es_pct / 100.0, rng, signed=True)
        plan = plan_matrix(matrix, scheme="csd", rng=np.random.default_rng(seed))
        census = census_plan(plan)
        luts = map_census(census).luts
        fanout = census.ones / dim
        plain = DEFAULT_TIMING.estimate(luts, dim, fanout=fanout)
        piped = DEFAULT_TIMING.estimate(luts, dim, fanout=fanout, pipelined=True)
        cycles = latency_cycles(8, 8, dim)
        plain_ns = cycles / plain.fmax_hz * 1e9
        piped_ns = (cycles + piped.extra_pipeline_cycles) / piped.fmax_hz * 1e9
        rows.append(
            {
                "dim": dim,
                "element_sparsity_pct": es_pct,
                "slr_span": plain.slr_span,
                "fmax_mhz": round(plain.fmax_hz / 1e6),
                "fmax_piped_mhz": round(piped.fmax_hz / 1e6),
                "extra_cycles": piped.extra_pipeline_cycles,
                "latency_ns": round(plain_ns, 1),
                "latency_piped_ns": round(piped_ns, 1),
                "net_gain": round(plain_ns / piped_ns, 2),
            }
        )
    return ExperimentResult(
        experiment_id="ablation_pipelined_broadcast",
        title="Broadcast/crossing pipelining ablation (Sec. VIII proposal)",
        rows=rows,
        notes=["the optimization pays off exactly where Fmax was interconnect-bound"],
    )


def ablation_cgra(seed: int = 104) -> ExperimentResult:
    """Sec. VIII CGRA projection across design sizes."""
    rng = np.random.default_rng(seed)
    rows = []
    for dim, es_pct in ((64, 50), (256, 80), (512, 90), (1024, 95)):
        matrix = element_sparse_matrix(dim, dim, 8, es_pct / 100.0, rng, signed=True)
        plan = plan_matrix(matrix, scheme="csd", rng=np.random.default_rng(seed))
        census = census_plan(plan)
        luts = map_census(census).luts
        fmax = DEFAULT_TIMING.estimate(luts, dim, fanout=census.ones / dim).fmax_hz
        comparison = compare_fpga_cgra(census, fmax, DEFAULT_CGRA)
        rows.append(
            {
                "dim": dim,
                "element_sparsity_pct": es_pct,
                "adders": comparison.serial_adders,
                "density_gain": round(comparison.density_gain, 1),
                "fmax_fpga_mhz": round(comparison.fpga_fmax_hz / 1e6),
                "fmax_cgra_mhz": round(comparison.cgra_fmax_hz / 1e6),
                "frequency_gain": round(comparison.frequency_gain, 2),
                "matrix_swap_cycles": comparison.matrix_swap_cycles,
            }
        )
    return ExperimentResult(
        experiment_id="ablation_cgra",
        title="CGRA projection: hard serial-adder grid vs FPGA LUT fabric",
        rows=rows,
        notes=[
            "512-transistor LUT vs 32-transistor cell -> >10x density; "
            "pipeline reconfiguration swaps matrices in tens of cycles",
        ],
    )


def ablation_tiling(seed: int = 105) -> ExperimentResult:
    """Sec. VIII tiling: FPGA reprogram vs CGRA pipeline reconfiguration.

    A matrix is forced through shrinking LUT budgets; per batch of 1000
    products the table shows how the 200 ms FPGA reconfiguration makes
    tiling impractical while a CGRA wave makes it nearly free.
    """
    from repro.core.tiling import TiledMatrixMultiplier

    rng = np.random.default_rng(seed)
    matrix = element_sparse_matrix(48, 32, 8, 0.5, rng, signed=True)
    rows = []
    for budget in (10**6, 4000, 2000, 1200):
        tiled = TiledMatrixMultiplier(
            matrix, lut_budget=budget, rng=np.random.default_rng(seed)
        )
        fpga = tiled.execution_estimate(batch=1000)
        cgra = tiled.execution_estimate(batch=1000, pipeline_reconfiguration=True)
        rows.append(
            {
                "lut_budget": budget,
                "tiles": tiled.tile_count,
                "fpga_total_s": round(fpga.total_s, 4),
                "fpga_reconfig_frac": round(fpga.reconfiguration_fraction, 4),
                "cgra_total_us": round(cgra.total_s * 1e6, 2),
                "cgra_reconfig_frac": round(cgra.reconfiguration_fraction, 4),
                "fpga_vs_cgra": round(fpga.total_s / cgra.total_s, 1),
            }
        )
    return ExperimentResult(
        experiment_id="ablation_tiling",
        title="Tiling ablation: FPGA 200 ms reprogram vs CGRA pipeline waves",
        rows=rows,
        notes=[
            "once more than one tile is needed, FPGA reconfiguration "
            "dominates total time; pipeline reconfiguration keeps tiling free",
        ],
    )


ABLATIONS = {
    "ablation_recoding": ablation_recoding,
    "ablation_tree_style": ablation_tree_style,
    "ablation_pipelined_broadcast": ablation_pipelined_broadcast,
    "ablation_cgra": ablation_cgra,
    "ablation_tiling": ablation_tiling,
}
