"""Studies beyond the paper's figures, grounding its narrative claims.

* :func:`study_dense_accelerator` — Sec. I's framing: what a dense
  two-operand systolic array pays on the paper's sparse fixed matrices
  (utilization = density; weight loading; tiling), against the spatial
  design.
* :func:`study_reservoir_sparsity` — Sec. II cites Gallicchio: "sparsity
  should exceed 80% to maximize performance and enable rich interaction
  among neurons."  This study sweeps reservoir sparsity on NARMA-10 and
  memory capacity, and adds the hardware angle the paper contributes:
  sparser reservoirs are not just as good — they are proportionally
  cheaper to build spatially.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.systolic import SystolicModel
from repro.bench.fpga_point import evaluation_design_point
from repro.bench.harness import ExperimentResult
from repro.reservoir.metrics import memory_capacity, nrmse
from repro.reservoir.readout import RidgeReadout
from repro.reservoir.esn import EchoStateNetwork
from repro.reservoir.tasks import memory_capacity_dataset, narma10
from repro.reservoir.weights import random_input_weights, random_reservoir
from repro.core.multiplier import FixedMatrixMultiplier
from repro.reservoir.quantize import quantize_weights

__all__ = [
    "study_dense_accelerator",
    "study_reservoir_sparsity",
    "study_quantization_width",
    "STUDIES",
]


def study_dense_accelerator(sparsity: float = 0.98) -> ExperimentResult:
    """Dense systolic array vs the spatial design across dimensions."""
    model = SystolicModel()
    rows = []
    for dim in (128, 256, 512, 1024, 2048):
        point = evaluation_design_point(dim, sparsity, "csd")
        estimate = model.estimate(dim, dim, density=1.0 - sparsity)
        dense_s = estimate.latency_s(model.clock_hz)
        rows.append(
            {
                "dim": dim,
                "tiles": estimate.row_tiles * estimate.col_tiles,
                "dense_util_pct": round(100 * estimate.utilization, 1),
                "dense_ns": round(dense_s * 1e9, 1),
                "spatial_ns": round(point.latency_ns, 1),
                "speedup": round(dense_s / point.latency_s, 1),
            }
        )
    return ExperimentResult(
        experiment_id="study_dense_accelerator",
        title=f"Dense systolic array vs spatial design ({sparsity:.0%} sparse)",
        rows=rows,
        notes=[
            "utilization equals density: the dense unit multiplies every "
            "zero; tiling and weight loads add the rest of the gap",
        ],
    )


def study_reservoir_sparsity(
    dim: int = 300, seed: int = 17, train_len: int = 2200
) -> ExperimentResult:
    """Task quality and hardware cost across reservoir sparsities."""
    narma = narma10(train_len, np.random.default_rng(0))
    mc_data = memory_capacity_dataset(train_len, 25, np.random.default_rng(1))
    rows = []
    for sparsity_pct in (0, 50, 75, 90, 95):
        rng = np.random.default_rng(seed)
        w = random_reservoir(
            dim, element_sparsity=sparsity_pct / 100.0, rng=rng
        )
        w_in = random_input_weights(dim, 1, rng=rng)
        esn = EchoStateNetwork(w, w_in)

        def evaluate(dataset, metric):
            washout = 100
            states = esn.run(dataset.inputs, washout=washout)
            targets = np.asarray(dataset.targets)[washout:]
            cut = int(len(states) * 0.7)
            readout = RidgeReadout(alpha=1e-6).fit(states[:cut], targets[:cut])
            return metric(readout.predict(states[cut:]), targets[cut:])

        narma_nrmse = evaluate(narma, nrmse)
        mc = evaluate(mc_data, memory_capacity)
        w_q, __ = quantize_weights(w, 8)
        mult = FixedMatrixMultiplier(w_q.T, scheme="csd", rng=rng)
        rows.append(
            {
                "element_sparsity_pct": sparsity_pct,
                "narma_nrmse": round(float(narma_nrmse), 3),
                "memory_capacity": round(float(mc), 2),
                "ones": mult.ones,
                "luts": mult.resources.luts,
                "latency_ns": round(mult.latency_ns(), 1),
            }
        )
    return ExperimentResult(
        experiment_id="study_reservoir_sparsity",
        title=f"Reservoir sparsity: task quality vs hardware cost (dim {dim})",
        rows=rows,
        notes=[
            "task quality holds (or improves) with sparsity while spatial "
            "hardware cost falls linearly — the paper's whole premise",
        ],
    )


def study_quantization_width(
    dim: int = 200, seed: int = 23, train_len: int = 2200
) -> ExperimentResult:
    """Integer-ESN weight precision vs task quality and hardware cost.

    Sec. II cites Kleyko et al.: "a precision of 3-4 bits leads to no
    accuracy loss."  This study sweeps the recurrent weight width on
    NARMA-10 with this library's integer ESN, alongside the compiled
    hardware cost at each width — quantization is a *hardware lever*
    here, since fewer weight bits directly mean fewer matrix ones.
    """
    from repro.reservoir.quantize import quantize_esn

    narma = narma10(train_len, np.random.default_rng(0))
    rng0 = np.random.default_rng(seed)
    w = random_reservoir(dim, element_sparsity=0.8, rng=rng0)
    w_in = random_input_weights(dim, 1, rng=rng0)
    rows = []
    for width in (2, 3, 4, 6, 8):
        esn = quantize_esn(w, w_in, weight_width=width, state_width=8)
        u_q = esn.quantize_inputs(2.0 * narma.inputs - 0.5)
        washout = 100
        states = esn.run(u_q, washout=washout).astype(float)
        targets = narma.targets[washout:]
        cut = int(len(states) * 0.7)
        readout = RidgeReadout(alpha=1e-4).fit(states[:cut], targets[:cut])
        error = nrmse(readout.predict(states[cut:]), targets[cut:])
        mult = FixedMatrixMultiplier(
            esn.w_q.T, input_width=8, scheme="csd", rng=np.random.default_rng(seed)
        )
        rows.append(
            {
                "weight_width": width,
                "narma_nrmse": round(float(error), 3),
                "ones": mult.ones,
                "luts": mult.resources.luts,
                "latency_ns": round(mult.latency_ns(), 1),
            }
        )
    return ExperimentResult(
        experiment_id="study_quantization_width",
        title=f"Integer-ESN weight precision sweep (dim {dim}, NARMA-10)",
        rows=rows,
        notes=[
            "Kleyko et al. (paper ref. [16]): 3-4 bits suffice; each bit "
            "dropped also removes matrix ones, i.e. hardware",
        ],
    )


STUDIES = {
    "study_dense_accelerator": study_dense_accelerator,
    "study_reservoir_sparsity": study_reservoir_sparsity,
    "study_quantization_width": study_quantization_width,
}
