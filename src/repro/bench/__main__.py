"""Command-line runner for the reproduced experiments.

Usage::

    python -m repro.bench list                  # show every experiment id
    python -m repro.bench <id> [...]            # run and print experiments
    python -m repro.bench all                   # the full paper evaluation
    python -m repro.bench ablations             # the reproduction's ablations
    python -m repro.bench <id> --csv results/   # also write CSV artifacts
    python -m repro.bench <id> --plot           # add ASCII latency charts

Paper figures (``fig05`` .. ``fig23``, ``table1``), ablations
(``ablation_*``) and the energy analysis (``efficiency``) are all
addressable by id.
"""

from __future__ import annotations

import sys

from repro.bench.ablations import ABLATIONS
from repro.bench.efficiency import efficiency_comparison
from repro.bench.experiments import EXPERIMENTS
from repro.bench.export import write_csv
from repro.bench.harness import format_experiment
from repro.bench.studies import STUDIES

ALL_RUNNABLE = {
    **EXPERIMENTS,
    **ABLATIONS,
    **STUDIES,
    "efficiency": efficiency_comparison,
}


_PLOTTABLE = {
    # experiment id -> (x, [ys], logy)
    "fig05": ("bit_sparsity_pct", ["lut", "ff"], False),
    "fig07": ("elements", ["lut", "ff"], False),
    "fig08": ("bitwidth", ["lut", "ff"], False),
    "fig10": ("ones", ["lut", "ff"], False),
    "fig11": ("lut", ["fmax_mhz"], False),
    "fig12": ("ones", ["power_w"], False),
    "fig13_14": ("dim", ["fpga_ns", "cusparse_ns", "optimized_ns"], True),
    "fig15_16": ("element_sparsity_pct", ["fpga_ns", "cusparse_ns", "optimized_ns"], True),
    "fig17": ("batch", ["speedup_cusparse", "speedup_optimized"], False),
    "fig18": ("batch", ["speedup_cusparse", "speedup_optimized"], False),
    "fig19_20": ("dim", ["sigma_ns", "fpga_ns"], True),
    "fig21_22": ("element_sparsity_pct", ["sigma_ns", "fpga_ns"], True),
    "fig23": ("batch", ["speedup"], False),
}


def main(argv: list[str]) -> int:
    csv_dir = None
    plot = False
    if "--plot" in argv:
        plot = True
        argv = [a for a in argv if a != "--plot"]
    if "--csv" in argv:
        at = argv.index("--csv")
        if at + 1 >= len(argv):
            print("--csv requires a directory argument", file=sys.stderr)
            return 2
        csv_dir = argv[at + 1]
        argv = argv[:at] + argv[at + 2 :]
    if not argv or argv[0] in ("-h", "--help", "list"):
        print(__doc__)
        print("available experiments:")
        for name, fn in ALL_RUNNABLE.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:28s} {doc}")
        return 0
    if argv == ["all"]:
        names = list(EXPERIMENTS)
    elif argv == ["ablations"]:
        names = list(ABLATIONS)
    else:
        names = argv
    unknown = [n for n in names if n not in ALL_RUNNABLE]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(ALL_RUNNABLE)}", file=sys.stderr)
        return 2
    for name in names:
        result = ALL_RUNNABLE[name]()
        print(format_experiment(result))
        if plot and name in _PLOTTABLE:
            from repro.bench.ascii_plot import render_chart

            x, ys, logy = _PLOTTABLE[name]
            print()
            print(render_chart(result, x, ys, logy=logy))
        if csv_dir:
            path = write_csv(result, csv_dir)
            print(f"(csv written to {path})")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
