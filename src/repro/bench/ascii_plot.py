"""Terminal charts for experiment results (no plotting dependencies).

Renders an experiment's series as an ASCII scatter chart — enough to see
the paper's figure shapes (regime changes, crossovers, level-offs)
straight from ``python -m repro.bench <id> --plot``.
"""

from __future__ import annotations

import math

from repro.bench.harness import ExperimentResult

__all__ = ["render_chart"]

_MARKERS = "ox+*#@%"


def _transform(value: float, log: bool) -> float:
    if not log:
        return float(value)
    if value <= 0:
        raise ValueError("log-scale chart requires positive values")
    return math.log10(value)


def render_chart(
    result: ExperimentResult,
    x: str,
    ys: list[str],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
) -> str:
    """ASCII chart of one or more series from an experiment's rows."""
    series = {y: result.series(x, y) for y in ys}
    series = {y: pts for y, pts in series.items() if pts}
    if not series:
        raise ValueError(f"no rows carry both {x!r} and any of {ys!r}")
    xs_all = [_transform(px, logx) for pts in series.values() for px, __ in pts]
    ys_all = [_transform(py, logy) for pts in series.values() for __, py in pts]
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo, y_hi = min(ys_all), max(ys_all)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for px, py in pts:
            col = round((_transform(px, logx) - x_lo) / x_span * (width - 1))
            row = round((_transform(py, logy) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker
    y_top = f"{10 ** y_hi:.3g}" if logy else f"{y_hi:.3g}"
    y_bot = f"{10 ** y_lo:.3g}" if logy else f"{y_lo:.3g}"
    x_left = f"{10 ** x_lo:.3g}" if logx else f"{x_lo:.3g}"
    x_right = f"{10 ** x_hi:.3g}" if logx else f"{x_hi:.3g}"
    gutter = max(len(y_top), len(y_bot))
    lines = [f"{result.experiment_id}: {', '.join(series)} vs {x}"
             + (" (log y)" if logy else "")]
    for i, row_cells in enumerate(grid):
        label = y_top if i == 0 else (y_bot if i == height - 1 else "")
        lines.append(f"{label:>{gutter}} |" + "".join(row_cells))
    lines.append(" " * gutter + " +" + "-" * width)
    lines.append(
        " " * gutter + "  " + x_left + " " * (width - len(x_left) - len(x_right)) + x_right
    )
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * gutter + "  " + legend)
    return "\n".join(lines)
