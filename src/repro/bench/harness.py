"""Experiment harness: structured results and paper-style tables.

Every table and figure in the paper's evaluation maps to one function in
:mod:`repro.bench.experiments`, each returning an :class:`ExperimentResult`
whose rows mirror the series the paper plots.  ``format_table`` renders
them in the same shape for side-by-side comparison with the paper, and the
``benchmarks/`` suite prints and shape-checks each one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ExperimentResult", "format_table", "format_experiment"]


@dataclass
class ExperimentResult:
    """One reproduced table/figure."""

    experiment_id: str
    title: str
    rows: list[dict[str, Any]]
    notes: list[str] = field(default_factory=list)

    def column(self, key: str) -> list[Any]:
        """Extract one column across all rows (missing values -> None)."""
        return [row.get(key) for row in self.rows]

    def series(self, x: str, y: str) -> list[tuple[Any, Any]]:
        """(x, y) pairs for rows that have both keys."""
        return [
            (row[x], row[y]) for row in self.rows if x in row and y in row
        ]


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: list[dict[str, Any]]) -> str:
    """Render rows as a fixed-width text table (union of keys, in order)."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [
        [_format_value(row.get(col, "")) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.rjust(w) for col, w in zip(columns, widths))
    divider = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.rjust(w) for cell, w in zip(r, widths)) for r in rendered
    ]
    return "\n".join([header, divider, *body])


def format_experiment(result: ExperimentResult) -> str:
    """Render a full experiment: title, table, notes."""
    parts = [f"== {result.experiment_id}: {result.title} ==", format_table(result.rows)]
    for note in result.notes:
        parts.append(f"note: {note}")
    return "\n".join(parts)
