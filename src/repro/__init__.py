"""Reproduction of "Direct Spatial Implementation of Sparse Matrix
Multipliers for Reservoir Computing" (Denton & Schmit, HPCA 2022).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.core` — matrix-to-circuit compiler, CSD recoding, cost census;
* :mod:`repro.hwsim` — cycle-accurate gate-level simulator;
* :mod:`repro.fpga` — XCVU13P device model, mapping, area/timing/power;
* :mod:`repro.rtl` — SystemVerilog emission;
* :mod:`repro.workloads` — the paper's random matrix generators;
* :mod:`repro.reservoir` — Echo State Network library and tasks;
* :mod:`repro.baselines` — GPU latency models and the SIGMA simulator;
* :mod:`repro.bench` — per-figure experiment harness;
* :mod:`repro.serve` — served inference: compile cache, column shards,
  asyncio micro-batching, and the :class:`~repro.serve.MatMulService`
  facade.
"""

from repro.core.multiplier import FixedMatrixMultiplier
from repro.core.plan import plan_matrix
from repro.core.split import split_matrix

__version__ = "1.0.0"

__all__ = ["FixedMatrixMultiplier", "plan_matrix", "split_matrix", "__version__"]
