"""The ``fuse`` stage: lower a :class:`LoweredKernel` to a shift-add schedule.

The gate-level engines *simulate* the paper's spatial multiplier — a
cycle loop advancing every serial adder, subtractor, negator and DFF of
the compiled netlist.  But the netlist is itself a mechanical encoding
of a static arithmetic fact: because the matrix is fixed, every output
column is a fixed signed sum of shifted input rows (the CSD shift-add
tree of Sec. III).  :func:`fuse` recovers that fact *from the kernel's
topology* — no plan, no netlist, no matrix required — and packages it as
a :class:`FusedKernel`: per output, the signed CSD terms as flat
``(row, shift, sign)`` integer arrays.

Execution (:class:`FusedCircuit`) is then a handful of vectorized int64
operations over a whole batch — gather the input rows, scale by
``sign << shift``, segment-sum per output — with **no cycle loop and no
per-cycle allocation**.  Results are bit-exact with every gate-level
engine (asserted by the cross-engine equivalence suite), including an
object-dtype fallback for accumulations wider than 62 bits.

How the recovery works
----------------------

Every component output in this architecture is registered, and the
decode window is fixed (``decode_delta``), so delaying a bit-serial
stream by one register stage doubles its decoded value.  Each component
is therefore a linear map on decoded values::

    input r   ->  x_r                  (delay 0)
    DFF       ->  2 * d
    adder     ->  2 * (a + b)
    subtract  ->  2 * (a - b)
    negator   ->  2 * (-b)

A single sweep over the kernel's slots in topological order (netlist
construction order, which the builder guarantees) propagates one sparse
integer linear combination per slot; the combination at each output
probe, divided by ``2**decode_delta``, is exactly that output's row
coefficients — the matrix column the hardware was compiled from.  Each
coefficient is then re-encoded in canonical signed-digit (NAF) form to
produce the ``(row, shift, sign)`` schedule.

Faults break linearity, so fusion refuses fault-bearing kernels and the
fused engine refuses per-call overrides: fault campaigns keep running on
the gate-level engines (the verification oracle), and the serve layer
falls back to ``bitplane`` automatically whenever a deployment has live
faults (see :meth:`repro.serve.shards.ShardedMultiplier.resolve_engine`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

import numpy as np

from repro.core.bits import signed_range
from repro.core.stages import STAGES

if TYPE_CHECKING:  # pragma: no cover - type-only import (fast imports fused)
    from repro.hwsim.fast import LoweredKernel

__all__ = [
    "FusedKernel",
    "FusedCircuit",
    "fuse",
    "csd_terms",
    "validate_batch",
    "segment_prefixes",
    "term_density",
    "select_variant",
    "DENSITY_THRESHOLD",
]

# Op codes for the topological sweep, assigned per kernel slot.
_OP_NONE, _OP_INPUT, _OP_ADD, _OP_SUB, _OP_NEG, _OP_DFF = range(6)

#: Term-density boundary between the dense fold and the sparse tiers.
#: Below this fraction of ``rows * cols`` the segmented/generated
#: executors do strictly less arithmetic than the dense matmul; above
#: it the BLAS-backed ``batch @ dense`` wins on memory locality.
DENSITY_THRESHOLD = 0.25


def segment_prefixes(term_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Segment boundaries of a sorted ``term_out`` array.

    Returns ``(starts, segment_out)``: ``starts[k]`` is the index of the
    first term of segment ``k`` (the shape ``np.add.reduceat`` wants)
    and ``segment_out[k]`` is the output column that segment feeds.
    Empty input yields two empty int64 arrays — outputs with no terms
    simply never appear (they stay zero in the scatter target).
    """
    term_out = np.ascontiguousarray(term_out, dtype=np.int64)
    if len(term_out) == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    starts = np.flatnonzero(np.r_[True, term_out[1:] != term_out[:-1]])
    return starts, term_out[starts]


def term_density(terms: int, rows: int, cols: int) -> float:
    """Fraction of the ``rows x cols`` area carrying CSD terms."""
    area = rows * cols
    return terms / area if area else 0.0


def select_variant(terms: int, rows: int, cols: int, result_width: int) -> str:
    """Pick the fused executor variant for a kernel's term statistics.

    Pure policy on scalars so callers holding only artifact *metadata*
    (term count persisted in the ``.npz`` header) can decide without
    loading term arrays or materializing the dense fold.  ``>62``-bit
    kernels always run segmented (exact Python integers); sparse
    schedules (density below :data:`DENSITY_THRESHOLD`) take the
    generated executor; dense ones keep the BLAS fold.
    """
    if result_width > 62:
        return "segmented"
    if term_density(terms, rows, cols) < DENSITY_THRESHOLD:
        return "generated"
    return "dense"


def validate_batch(vectors: np.ndarray, rows: int, input_width: int) -> np.ndarray:
    """Shape/range checks shared by every engine (gate-level and fused).

    Returns the batch as a 2-D int64 array; raises ``ValueError`` for
    anything that is not a ``(batch, rows)`` set of ``s{input_width}``
    vectors.
    """
    arr = np.atleast_2d(np.asarray(vectors))
    if arr.ndim != 2:
        raise ValueError(
            f"expected a (batch, rows) array of vectors, got shape {arr.shape}"
        )
    if arr.shape[1] != rows:
        raise ValueError(f"vector length {arr.shape[1]} != matrix rows {rows}")
    arr = arr.astype(np.int64)
    lo, hi = signed_range(input_width)
    bad = (arr < lo) | (arr > hi)
    if np.any(bad):
        v = int(arr[bad][0])
        raise ValueError(f"input {v} does not fit in s{input_width}")
    return arr


def csd_terms(value: int) -> list[tuple[int, int]]:
    """Canonical signed-digit (NAF) decomposition of an integer.

    Returns ``[(shift, sign), ...]`` with ``sign`` in ``{-1, +1}`` such
    that ``value == sum(sign << shift)``, no two shifts adjacent — the
    minimal-term signed-power-of-two form the paper's hardware wires up.
    """
    value = int(value)
    terms: list[tuple[int, int]] = []
    shift = 0
    while value:
        if value & 1:
            digit = 2 - (value & 3)  # +1 when value % 4 == 1, else -1
            terms.append((shift, digit))
            value -= digit
        value >>= 1
        shift += 1
    return terms


@dataclass(frozen=True, eq=False)
class FusedKernel:
    """The shift-add schedule of one compiled multiplier, as flat arrays.

    One entry per signed CSD term: output ``term_out[i]`` accumulates
    ``term_sign[i] * (x[term_row[i]] << term_shift[i])``.  Terms are
    sorted by output (then row, then shift), so execution is a gather, a
    scale, and one segmented reduction — no cycle loop.

    Like :class:`~repro.hwsim.fast.LoweredKernel`, a fused kernel is
    deliberately *dumb data*: picklable (process shards receive it once
    at pool creation) and serializable
    (:func:`repro.core.serialize.fused_to_npz`).  ``fingerprint`` is the
    plan fingerprint of the kernel it was fused from; fused kernels are
    always fault-free by construction (:func:`fuse` refuses fault
    snapshots).
    """

    fingerprint: str
    rows: int
    cols: int
    input_width: int
    result_width: int
    term_out: np.ndarray
    term_row: np.ndarray
    term_shift: np.ndarray
    term_sign: np.ndarray

    #: Array fields in declaration order — the .npz serializer contract.
    ARRAY_FIELDS = ("term_out", "term_row", "term_shift", "term_sign")

    #: Scalar fields (the .npz JSON header).
    SCALAR_FIELDS = ("fingerprint", "rows", "cols", "input_width", "result_width")

    def __post_init__(self) -> None:
        for name in self.ARRAY_FIELDS:
            arr = np.ascontiguousarray(getattr(self, name), dtype=np.int64)
            if arr.ndim != 1:
                raise ValueError(f"fused field {name} must be 1-D, got {arr.shape}")
            object.__setattr__(self, name, arr)
        n = len(self.term_out)
        for name in self.ARRAY_FIELDS:
            if len(getattr(self, name)) != n:
                raise ValueError(f"fused field {name} disagrees in length")
        if n:
            if np.any(np.diff(self.term_out) < 0):
                raise ValueError("term_out must be sorted ascending")
            if self.term_out[0] < 0 or self.term_out[-1] >= self.cols:
                raise ValueError("term_out references an output out of range")
            if np.any((self.term_row < 0) | (self.term_row >= self.rows)):
                raise ValueError("term_row references a row out of range")
            if np.any(self.term_shift < 0):
                raise ValueError("term_shift must be non-negative")
            if np.any(np.abs(self.term_sign) != 1):
                raise ValueError("term_sign entries must be +1 or -1")

    @property
    def terms(self) -> int:
        """Total signed shift-add terms across all outputs."""
        return len(self.term_out)

    def coefficients(self) -> np.ndarray:
        """The ``(rows, cols)`` integer matrix the schedule computes.

        Reassembled from the CSD terms with exact Python integers, so it
        is valid at any width; for a kernel fused from a compile of
        matrix ``V`` this reproduces ``V`` exactly — a self-check the
        tests exploit.
        """
        out = np.zeros((self.rows, self.cols), dtype=object)
        for o, r, s, g in zip(
            self.term_out, self.term_row, self.term_shift, self.term_sign
        ):
            out[int(r), int(o)] += int(g) << int(s)
        return out

    def equivalent(self, other: "FusedKernel") -> bool:
        """Field-by-field equality (arrays compared element-wise)."""
        for field in fields(self):
            mine, theirs = getattr(self, field.name), getattr(other, field.name)
            if field.name in self.ARRAY_FIELDS:
                if not np.array_equal(mine, theirs):
                    return False
            elif mine != theirs:
                return False
        return True


def fuse(kernel: "LoweredKernel") -> FusedKernel:
    """Recover the static shift-add schedule from a lowered kernel.

    A pure function of the kernel's adder/subtractor/negator/DFF
    topology: one sweep in slot order propagates each component's sparse
    linear combination of input rows, and the combination at every
    output probe (deflated by the decode window) is that output's exact
    integer coefficient per row, re-encoded as CSD terms.

    Raises ``ValueError`` for kernels with a fault snapshot (a stuck
    gate is not a linear map — run those on the gate-level engines) and
    for topologies this builder never produces (unordered operands,
    coefficients not divisible by the decode window).
    """
    STAGES.increment("fuse")
    if kernel.has_faults:
        raise ValueError(
            "cannot fuse a kernel with a fault snapshot; faults break the "
            "static shift-add schedule — execute it on a gate-level engine"
        )
    if len(kernel.input_idx) != kernel.rows:
        raise ValueError(
            f"kernel has {len(kernel.input_idx)} input slots for "
            f"{kernel.rows} rows"
        )
    size = kernel.size
    op = np.full(size, _OP_NONE, dtype=np.int8)
    op_a = np.full(size, -1, dtype=np.int64)
    op_b = np.full(size, -1, dtype=np.int64)
    row_of = np.full(size, -1, dtype=np.int64)
    op[kernel.input_idx] = _OP_INPUT
    row_of[kernel.input_idx] = np.arange(len(kernel.input_idx))
    op[kernel.add_idx] = _OP_ADD
    op_a[kernel.add_idx] = kernel.add_a
    op_b[kernel.add_idx] = kernel.add_b
    op[kernel.sub_idx] = _OP_SUB
    op_a[kernel.sub_idx] = kernel.sub_a
    op_b[kernel.sub_idx] = kernel.sub_b
    op[kernel.neg_idx] = _OP_NEG
    op_b[kernel.neg_idx] = kernel.neg_b
    op[kernel.dff_idx] = _OP_DFF
    op_a[kernel.dff_idx] = kernel.dff_d

    # One sparse linear combination {row: integer coefficient} per slot.
    # Slot order is construction order, which the builder keeps
    # topological; verified below rather than assumed.
    values: list[dict[int, int] | None] = [None] * size
    for slot in range(size):
        code = op[slot]
        if code == _OP_NONE:  # ConstantZero (culled column)
            values[slot] = {}
            continue
        if code == _OP_INPUT:
            values[slot] = {int(row_of[slot]): 1}
            continue
        combo: dict[int, int] = {}
        if code != _OP_NEG:
            a = int(op_a[slot])
            if not 0 <= a < slot or values[a] is None:
                raise ValueError(f"kernel slot {slot} is not topologically ordered")
            for r, c in values[a].items():
                combo[r] = c << 1
        if code != _OP_DFF:
            b = int(op_b[slot])
            if not 0 <= b < slot or values[b] is None:
                raise ValueError(f"kernel slot {slot} is not topologically ordered")
            scale = -1 if code in (_OP_SUB, _OP_NEG) else 1
            for r, c in values[b].items():
                total = combo.get(r, 0) + scale * (c << 1)
                if total:
                    combo[r] = total
                else:
                    combo.pop(r, None)
        values[slot] = combo

    window = 1 << kernel.decode_delta
    term_out: list[int] = []
    term_row: list[int] = []
    term_shift: list[int] = []
    term_sign: list[int] = []
    for j, probe in enumerate(kernel.probe_idx):
        combo = values[int(probe)]
        assert combo is not None
        for r in sorted(combo):
            coeff = combo[r]
            if coeff % window:
                raise ValueError(
                    f"output {j} row {r}: coefficient {coeff} is not aligned "
                    f"to the decode window (2**{kernel.decode_delta})"
                )
            for shift, sign in csd_terms(coeff >> kernel.decode_delta):
                term_out.append(j)
                term_row.append(r)
                term_shift.append(shift)
                term_sign.append(sign)

    return FusedKernel(
        fingerprint=kernel.fingerprint,
        rows=kernel.rows,
        cols=kernel.cols,
        input_width=kernel.input_width,
        result_width=kernel.result_width,
        term_out=np.array(term_out, dtype=np.int64),
        term_row=np.array(term_row, dtype=np.int64),
        term_shift=np.array(term_shift, dtype=np.int64),
        term_sign=np.array(term_sign, dtype=np.int64),
    )


class FusedCircuit:
    """Execute a :class:`FusedKernel`: ``y = Mx`` with no cycle loop.

    Three executor variants, all bit-exact with the gate engines:

    ``dense``
        The CSD terms are folded once into the per-``(row, out)``
        integer coefficient matrix they sum to; execution is a single
        int64 matrix product per batch.  O(rows * cols) per lane
        regardless of sparsity — fastest when the schedule is dense.
    ``segmented``
        CSR-style: gather the term rows, scale by ``sign << shift``,
        one ``np.add.reduceat`` per batch over the segment boundaries
        from :func:`segment_prefixes`.  O(terms) per lane.  Kernels
        wider than 62 bits always run this variant over exact Python
        integers (object dtype), matching the gate engines' decode
        types; narrow kernels run it in int64 — safe because the NAF
        absolute-term sum is at most ``4/3`` of the coefficient sum, so
        every partial sum is bounded by ``(4/3) * 2**61 < 2**63``.
    ``generated``
        The schedule compiled to specialized numpy source by
        :mod:`repro.hwsim.codegen` — same O(terms) arithmetic with the
        indexing arrays baked in, outputs grouped by term count so each
        group reduces with a contiguous fixed-width reshape-sum, and
        degenerate shapes (empty schedule, one term per output)
        collapsed at generation time.

    ``variant="auto"`` (the default) picks via :func:`select_variant`;
    only the chosen variant's state is materialized, so selecting
    against the dense fold never allocates it.  Pass ``source=`` to
    reuse cached generated source (skipping the ``codegen`` stage).
    """

    #: Executor variants, in preference order for dense → sparse.
    VARIANTS = ("dense", "segmented", "generated")

    def __init__(
        self,
        kernel: FusedKernel,
        variant: str = "auto",
        source: str | None = None,
    ) -> None:
        self.kernel = kernel
        self._wide = kernel.result_width > 62
        if variant == "auto":
            variant = select_variant(
                kernel.terms, kernel.rows, kernel.cols, kernel.result_width
            )
        if variant not in self.VARIANTS:
            raise ValueError(
                f"unknown fused executor variant {variant!r}; "
                f"expected one of {('auto',) + self.VARIANTS}"
            )
        if self._wide and variant != "segmented":
            raise ValueError(
                f"kernels wider than 62 bits require the segmented executor, "
                f"not {variant!r}"
            )
        if variant == "generated":
            from repro.hwsim import codegen  # deferred: codegen imports us

            if source is None:
                source = codegen.generate_source(kernel)
            self._generated = codegen.load_execute(source, kernel.fingerprint)
            self.source = source
        elif variant == "segmented":
            self._starts, self._segment_out = segment_prefixes(kernel.term_out)
            if self._wide:
                # Exact object path: coefficients as Python integers.
                self._coeff = np.array(
                    [
                        int(g) << int(s)
                        for g, s in zip(kernel.term_sign, kernel.term_shift)
                    ],
                    dtype=object,
                )
            else:
                self._coeff = kernel.term_sign * np.left_shift(
                    np.int64(1), kernel.term_shift
                )
        else:
            dense = np.zeros((kernel.rows, kernel.cols), dtype=np.int64)
            scaled = kernel.term_sign * np.left_shift(np.int64(1), kernel.term_shift)
            np.add.at(dense, (kernel.term_row, kernel.term_out), scaled)
            self._dense = dense
        self.variant = variant

    def multiply_batch(self, vectors: np.ndarray) -> np.ndarray:
        """Evaluate a ``(B, rows)`` batch; returns ``(B, cols)``."""
        batch = validate_batch(vectors, self.kernel.rows, self.kernel.input_width)
        return self.execute(batch)

    def multiply(self, vector: np.ndarray | list[int]) -> np.ndarray:
        """One vector through the schedule; returns the ``(cols,)`` product."""
        values = np.asarray(vector).ravel()
        return self.multiply_batch(values[None, :])[0]

    def execute(self, batch: np.ndarray) -> np.ndarray:
        """Run a pre-validated int64 ``(B, rows)`` batch (the hot path)."""
        kernel = self.kernel
        if self.variant == "dense":
            return batch @ self._dense
        if self.variant == "generated":
            return self._generated(batch)
        dtype = object if self._wide else np.int64
        out = np.zeros((batch.shape[0], kernel.cols), dtype=dtype)
        if batch.shape[0] == 0 or kernel.terms == 0:
            return out
        gathered = batch[:, kernel.term_row]
        if self._wide:
            gathered = gathered.astype(object)
        sums = np.add.reduceat(gathered * self._coeff, self._starts, axis=1)
        out[:, self._segment_out] = sums
        return out
