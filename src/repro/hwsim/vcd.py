"""VCD (Value Change Dump) waveform export for compiled circuits.

Runs a vector through a compiled multiplier while recording every
component output, then writes an IEEE-1364 VCD file viewable in GTKWave
or any waveform viewer — the debugging affordance a hardware team expects
from a simulator.

Large netlists produce large dumps; pass ``signal_prefixes`` to restrict
recording (e.g. ``("sub.", "out")`` for just the output stage).
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.hwsim.builder import CompiledCircuit
from repro.hwsim.components import InputStream
from repro.rtl.emitter import sanitize_identifier

__all__ = ["dump_vcd"]


def _id_code(index: int) -> str:
    """Compact printable VCD identifier codes: ! " # ... then pairs."""
    chars = [chr(c) for c in range(33, 127) if chr(c) not in "$"]
    base = len(chars)
    code = ""
    index += 1
    while index:
        index, digit = divmod(index - 1, base)
        code = chars[digit] + code
    return code


def dump_vcd(
    circuit: CompiledCircuit,
    vector: np.ndarray | list[int],
    path: str | pathlib.Path | None = None,
    signal_prefixes: tuple[str, ...] | None = None,
) -> str:
    """Simulate one product and return (and optionally write) its VCD.

    Args:
        circuit: compiled multiplier.
        vector: input activation vector.
        path: optional file to write.
        signal_prefixes: record only components whose name starts with one
            of these prefixes (inputs are always recorded).
    """
    netlist = circuit.netlist
    tracked = []
    for component in netlist.components:
        name = component.name or f"w{len(tracked)}"
        if isinstance(component, InputStream):
            tracked.append((component, name))
        elif signal_prefixes is None or any(
            name.startswith(p) for p in signal_prefixes
        ):
            tracked.append((component, name))
    codes = {id(c): _id_code(i) for i, (c, __) in enumerate(tracked)}

    header = [
        "$date repro.hwsim $end",
        "$version repro bit-serial simulator $end",
        "$timescale 1ns $end",
        "$scope module fixed_matrix_mult $end",
    ]
    for component, name in tracked:
        header.append(
            f"$var wire 1 {codes[id(component)]} {sanitize_identifier(name)} $end"
        )
    header.append("$upscope $end")
    header.append("$enddefinitions $end")

    # Run the product while sampling values each cycle.
    values = [int(v) for v in np.asarray(vector).ravel()]
    netlist.reset()
    netlist.load_vector(values, circuit.run_cycles)
    body = ["$dumpvars"]
    body.extend(f"0{codes[id(c)]}" for c, __ in tracked)
    body.append("$end")
    last = {id(c): 0 for c, __ in tracked}
    for cycle in range(circuit.run_cycles):
        netlist.step()
        changes = []
        for component, __ in tracked:
            if component.out != last[id(component)]:
                last[id(component)] = component.out
                changes.append(f"{component.out}{codes[id(component)]}")
        if changes:
            body.append(f"#{cycle + 1}")
            body.extend(changes)
    body.append(f"#{circuit.run_cycles + 1}")

    text = "\n".join(header + body) + "\n"
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text
