"""Netlist container and two-phase cycle simulation engine.

Because every primitive output is registered (see
:mod:`repro.hwsim.components`), one simulated cycle is simply:

1. **compute** — every component latches its next output from the current
   outputs of its inputs (order-independent);
2. **commit** — every component exposes its next output.

Probes sample post-commit values, so ``probe.stream[t]`` is the wire value
during cycle ``t``.

Vectors are processed one at a time, exactly like the paper's SRAM design
wrapper: the wrapper loads the input shift registers, runs the array for
one full product, captures the output, and repeats.  Batched products are
therefore sequential (``batch_cycles = batch * latency_cycles`` in
:mod:`repro.core.latency`), and the simulator resets all serial state
between vectors.
"""

from __future__ import annotations

from collections import Counter

from repro.hwsim.components import Component, InputStream

__all__ = ["Netlist", "Probe"]


class Probe:
    """Samples a component's post-commit output every cycle."""

    __slots__ = ("src", "stream", "name")

    def __init__(self, src: Component, name: str = "") -> None:
        self.src = src
        self.stream: list[int] = []
        self.name = name

    def sample(self) -> None:
        self.stream.append(self.src.out)

    def reset(self) -> None:
        self.stream = []


class Netlist:
    """A flat collection of components plus output probes.

    Components are stored with an optional *pipeline depth* (register
    distance from the input shift registers), which the builder uses to
    place the decode origin and tests use to audit path balance.
    """

    def __init__(self) -> None:
        self.components: list[Component] = []
        self.probes: list[Probe] = []
        self.inputs: list[InputStream] = []
        self._depths: dict[int, int] = {}
        self._cycle = 0
        # Structural faults for verification campaigns: id(component) ->
        # (kind, value) with kind in {"stuck_output", "stuck_carry"}.
        self._faults: dict[int, tuple[str, int]] = {}

    # -- construction -----------------------------------------------------

    def add(self, component: Component, depth: int | None = None) -> Component:
        """Register a component; ``depth`` is its pipeline distance from inputs."""
        self.components.append(component)
        if isinstance(component, InputStream):
            self.inputs.append(component)
        if depth is not None:
            self._depths[id(component)] = depth
        return component

    def probe(self, component: Component, name: str = "") -> Probe:
        probe = Probe(component, name)
        self.probes.append(probe)
        return probe

    def depth_of(self, component: Component) -> int | None:
        return self._depths.get(id(component))

    # -- simulation -------------------------------------------------------

    def reset(self) -> None:
        """Restore power-on state: registers cleared, probe streams emptied."""
        for component in self.components:
            component.reset()
        for probe in self.probes:
            probe.reset()
        self._cycle = 0

    def step(self) -> None:
        """Advance one clock cycle (compute phase, then commit phase).

        Injected faults are applied around the phases: stuck carries
        before compute, stuck outputs after commit (so probes observe the
        defective value, as real silicon would present it).
        """
        cycle = self._cycle
        if self._faults:
            for component in self.components:
                fault = self._faults.get(id(component))
                if fault and fault[0] == "stuck_carry":
                    component.carry = fault[1]
        for component in self.components:
            component.compute(cycle)
        for component in self.components:
            component.commit()
        if self._faults:
            for component in self.components:
                fault = self._faults.get(id(component))
                if fault and fault[0] == "stuck_output":
                    component.out = fault[1]
        for probe in self.probes:
            probe.sample()
        self._cycle += 1

    # -- fault injection ----------------------------------------------------

    def add_fault(self, component: Component, kind: str, value: int) -> None:
        """Attach a structural fault to a component (see repro.hwsim.faults)."""
        if kind not in ("stuck_output", "stuck_carry"):
            raise ValueError(f"unknown fault kind {kind!r}")
        if value not in (0, 1):
            raise ValueError(f"fault value must be 0 or 1, got {value}")
        self._faults[id(component)] = (kind, value)

    def remove_fault(self, component: Component) -> None:
        self._faults.pop(id(component), None)

    def clear_faults(self) -> None:
        self._faults.clear()

    def iter_faults(self):
        """Yield ``(component, kind, value)`` for every injected fault.

        Lets alternative engines (:mod:`repro.hwsim.fast`) replay the
        same fault set with the same schedule the object engine uses.
        """
        if not self._faults:
            return
        for component in self.components:
            fault = self._faults.get(id(component))
            if fault is not None:
                yield component, fault[0], fault[1]

    def run(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {cycles}")
        for _ in range(cycles):
            self.step()

    def load_vector(self, vector: list[int], stream_length: int) -> None:
        """Load one input vector into the input shift registers."""
        if len(vector) != len(self.inputs):
            raise ValueError(
                f"vector length {len(vector)} != {len(self.inputs)} inputs"
            )
        for stream, value in zip(self.inputs, vector):
            stream.load([int(value)], stream_length)

    # -- reporting ----------------------------------------------------------

    def primitive_counts(self) -> Counter:
        """Histogram of primitive types (for census cross-validation)."""
        counts: Counter = Counter()
        for component in self.components:
            counts[type(component).__name__] += 1
        return counts

    def count(self, kind: type) -> int:
        return sum(1 for c in self.components if type(c) is kind)

    def __len__(self) -> int:
        return len(self.components)
