"""SRAM-fed design wrapper (Sec. VI of the paper).

"We 'wrap' the matrix multiplier with a small design that feeds inputs
from an SRAM, and captures results in that same SRAM.  This design
wrapper only adds a few extra LUTs and registers."

The wrapper models the deployment loop around the compiled array: input
vectors are queued in a word-addressed memory, streamed through the
multiplier (the paper's sequential batching), and the decoded results
written back.  It is the piece that turns the raw combinational fabric
into the "device memory to device memory" latency the paper compares
against the GPU's.

Simulation engine choice
------------------------

The *hardware being modelled* processes vectors strictly sequentially,
and the wrapper's cycle accounting always reflects that
(``total_cycles = vectors * cycles_per_vector``).  How the *simulation*
computes those products is independent, and selectable via ``engine``:

* ``"object"`` — one object-graph product per vector (slowest; use when
  you also need per-cycle probes or VCD dumps of the run);
* ``"scalar"`` — the vectorized engine, one vector at a time;
* ``"batched"`` — one batched cycle loop over the whole SRAM;
* ``"bitplane"`` (default) — the whole SRAM batch packed 64 lanes per
  ``uint64`` word and streamed through one cycle loop.

All engines are bit-exact with each other (asserted by tests), including
under injected faults, so the default is simply the fastest one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hwsim.builder import CompiledCircuit
from repro.hwsim.fast import ALL_ENGINES as _ENGINES, FastCircuit

__all__ = ["SramWrapper", "WrapperRun"]


@dataclass
class WrapperRun:
    """Accounting for one wrapper invocation."""

    vectors: int
    cycles_per_vector: int
    total_cycles: int

    def latency_s(self, frequency_hz: float) -> float:
        if frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_hz}")
        return self.total_cycles / frequency_hz


@dataclass
class SramWrapper:
    """Memory-to-memory execution wrapper around a compiled circuit.

    Attributes:
        circuit: the compiled multiplier array.
        input_memory: queued input vectors (rows: vectors).
        output_memory: captured results, filled by :meth:`run`.
        engine: simulation engine (see module docstring).
    """

    circuit: CompiledCircuit
    input_memory: np.ndarray | None = None
    output_memory: np.ndarray | None = None
    engine: str = "bitplane"
    last_run: WrapperRun | None = field(default=None, init=False)
    _fast: FastCircuit | None = field(default=None, init=False, repr=False)
    _fast_circuit: CompiledCircuit | None = field(
        default=None, init=False, repr=False
    )

    def __post_init__(self) -> None:
        self._check_engine()

    def _check_engine(self) -> None:
        if self.engine not in _ENGINES:
            raise ValueError(
                f"engine must be one of {_ENGINES}, got {self.engine!r}"
            )

    def load(self, vectors: np.ndarray) -> None:
        """Write a batch of input vectors into the input SRAM."""
        arr = np.atleast_2d(np.asarray(vectors, dtype=np.int64))
        if arr.shape[1] != self.circuit.plan.rows:
            raise ValueError(
                f"vectors must have {self.circuit.plan.rows} elements, "
                f"got {arr.shape[1]}"
            )
        self.input_memory = arr

    def run(self) -> np.ndarray:
        """Stream every queued vector through the array, cycle-accurately.

        The modelled hardware products are sequential: each vector
        occupies the array for the full serial result
        (``circuit.run_cycles``), exactly as the latency model's
        ``batch_cycles`` assumes — the accounting below is identical for
        every engine.  Results are written to ``output_memory`` and
        returned.
        """
        self._check_engine()
        if self.input_memory is None:
            raise RuntimeError("no input vectors loaded; call load() first")
        per_vector = self.circuit.run_cycles
        if self.engine == "object" and len(self.input_memory):
            results = [self.circuit.multiply(v) for v in self.input_memory]
            self.output_memory = np.stack(results)
        else:
            # FastCircuit owns the empty-SRAM result shape/dtype rule, so
            # an empty run is also routed here (engine choice is moot for
            # zero vectors) — every engine stays behaviourally identical.
            if self._fast is None or self._fast_circuit is not self.circuit:
                self._fast = FastCircuit.from_compiled(self.circuit)
                self._fast_circuit = self.circuit
            engine = "scalar" if self.engine == "object" else self.engine
            self.output_memory = self._fast.multiply_batch(
                self.input_memory, engine=engine
            )
        vectors = self.output_memory.shape[0]
        self.last_run = WrapperRun(
            vectors=vectors,
            cycles_per_vector=per_vector,
            total_cycles=per_vector * vectors,
        )
        return self.output_memory
