"""SRAM-fed design wrapper (Sec. VI of the paper).

"We 'wrap' the matrix multiplier with a small design that feeds inputs
from an SRAM, and captures results in that same SRAM.  This design
wrapper only adds a few extra LUTs and registers."

The wrapper models the deployment loop around the compiled array: input
vectors are queued in a word-addressed memory, streamed through the
multiplier one product at a time (the paper's sequential batching), and
the decoded results written back.  It is the piece that turns the raw
combinational fabric into the "device memory to device memory" latency
the paper compares against the GPU's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hwsim.builder import CompiledCircuit

__all__ = ["SramWrapper", "WrapperRun"]


@dataclass
class WrapperRun:
    """Accounting for one wrapper invocation."""

    vectors: int
    cycles_per_vector: int
    total_cycles: int

    def latency_s(self, frequency_hz: float) -> float:
        if frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_hz}")
        return self.total_cycles / frequency_hz


@dataclass
class SramWrapper:
    """Memory-to-memory execution wrapper around a compiled circuit.

    Attributes:
        circuit: the compiled multiplier array.
        input_memory: queued input vectors (rows: vectors).
        output_memory: captured results, filled by :meth:`run`.
    """

    circuit: CompiledCircuit
    input_memory: np.ndarray | None = None
    output_memory: np.ndarray | None = None
    last_run: WrapperRun | None = field(default=None, init=False)

    def load(self, vectors: np.ndarray) -> None:
        """Write a batch of input vectors into the input SRAM."""
        arr = np.atleast_2d(np.asarray(vectors, dtype=np.int64))
        if arr.shape[1] != self.circuit.plan.rows:
            raise ValueError(
                f"vectors must have {self.circuit.plan.rows} elements, "
                f"got {arr.shape[1]}"
            )
        self.input_memory = arr

    def run(self) -> np.ndarray:
        """Stream every queued vector through the array, cycle-accurately.

        Products are sequential: each vector occupies the array for the
        full serial result (`circuit.run_cycles`), exactly as the latency
        model's ``batch_cycles`` assumes.  Results are written to
        ``output_memory`` and returned.
        """
        if self.input_memory is None:
            raise RuntimeError("no input vectors loaded; call load() first")
        results = []
        per_vector = self.circuit.run_cycles
        for vector in self.input_memory:
            results.append(self.circuit.multiply(vector))
        self.output_memory = np.stack(results)
        self.last_run = WrapperRun(
            vectors=len(results),
            cycles_per_vector=per_vector,
            total_cycles=per_vector * len(results),
        )
        return self.output_memory
