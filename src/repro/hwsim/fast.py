"""Vectorized and bit-plane-batched gate-level simulation engines.

The repository ships three ways to execute one compiled netlist, each
bit-exact with the others (equivalence is asserted by tests on random
matrices, so any engine can stand in for any other):

* **object engine** (:mod:`repro.hwsim.netlist`) — one Python object per
  gate, one call per component per cycle.  Ideal for probing, waveform
  dumps and fault injection experiments; slowest by two to three orders
  of magnitude.
* **vectorized engine** (:class:`FastCircuit`, ``multiply`` /
  ``multiply_batch(engine="batched")``) — the same netlist compiled to
  index arrays; every component *class* updates with a handful of numpy
  ops per cycle.  ``multiply_batch(engine="batched")`` adds a leading
  batch axis so ``B`` independent input vectors stream through the same
  compiled structure in one cycle loop — the paper's sequential-batching
  wrapper collapsed into a single simulation pass.
* **bit-plane engine** (``multiply_batch(engine="bitplane")``, the
  default) — up to 64 batch lanes are packed into each ``uint64`` word
  ("bit-planes"), so one bitwise numpy op per component class per cycle
  advances all lanes at once: a serial adder over all lanes is three
  XOR/AND/OR expressions, not a per-lane add.  Batches larger than 64
  simply use multiple words.  This is the engine to use for reservoir
  rollouts, fault campaigns and throughput benchmarks; at batch >= 64 it
  is well over an order of magnitude faster than looping the scalar
  path.

Because every output is registered, evaluation order is irrelevant: each
cycle reads the previous cycle's output vector and writes a fresh one.
All engines honour faults injected on the underlying
:class:`~repro.hwsim.netlist.Netlist` (``stuck_output`` applied
post-commit, ``stuck_carry`` pre-compute), matching the object engine's
semantics exactly, so verification campaigns may run on whichever engine
is fastest for the batch at hand.
"""

from __future__ import annotations

import numpy as np

from repro.core.bits import from_twos_complement_bits, signed_range
from repro.hwsim.builder import CompiledCircuit
from repro.hwsim.components import (
    DFF,
    InputStream,
    SerialAdder,
    SerialNegator,
    SerialSubtractor,
)

__all__ = ["FastCircuit", "ALL_ENGINES", "pack_lanes", "unpack_lanes"]

_WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def pack_lanes(bits: np.ndarray) -> np.ndarray:
    """Pack a leading batch axis of 0/1 values into ``uint64`` bit-planes.

    ``bits`` has shape ``(lanes, ...)``; the result has shape
    ``(ceil(lanes / 64), ...)`` where bit ``l`` of word ``w`` holds lane
    ``w * 64 + l``.  Unused trailing lanes are zero.
    """
    arr = np.asarray(bits)
    lanes = arr.shape[0]
    words = max(1, -(-lanes // _WORD_BITS))
    padded = np.zeros((words * _WORD_BITS,) + arr.shape[1:], dtype=np.uint64)
    padded[:lanes] = arr.astype(np.uint64)
    padded = padded.reshape((words, _WORD_BITS) + arr.shape[1:])
    shifts = np.arange(_WORD_BITS, dtype=np.uint64).reshape(
        (1, _WORD_BITS) + (1,) * (arr.ndim - 1)
    )
    return np.bitwise_or.reduce(padded << shifts, axis=1)


def unpack_lanes(words: np.ndarray, lanes: int) -> np.ndarray:
    """Inverse of :func:`pack_lanes`: recover the first ``lanes`` lanes."""
    arr = np.asarray(words, dtype=np.uint64)
    shifts = np.arange(_WORD_BITS, dtype=np.uint64).reshape(
        (1, _WORD_BITS) + (1,) * (arr.ndim - 1)
    )
    bits = (arr[:, None] >> shifts) & np.uint64(1)
    flat = bits.reshape((arr.shape[0] * _WORD_BITS,) + arr.shape[1:])
    return flat[:lanes].astype(np.int8)


class FastCircuit:
    """A compiled circuit lowered to vectorized per-class updates."""

    ENGINES = ("scalar", "batched", "bitplane")

    def __init__(self, circuit: CompiledCircuit) -> None:
        self.plan = circuit.plan
        self.decode_delta = circuit.decode_delta
        self.run_cycles = circuit.run_cycles
        self.netlist = circuit.netlist
        components = circuit.netlist.components
        index = {id(c): i for i, c in enumerate(components)}
        self.size = len(components)
        self._global_index = index

        self._input_idx = np.array(
            [index[id(c)] for c in components if isinstance(c, InputStream)],
            dtype=np.int64,
        )

        def gather(kind):
            return [c for c in components if type(c) is kind]

        adders = gather(SerialAdder)
        self._add_idx = np.array([index[id(c)] for c in adders], dtype=np.int64)
        self._add_a = np.array([index[id(c.a)] for c in adders], dtype=np.int64)
        self._add_b = np.array([index[id(c.b)] for c in adders], dtype=np.int64)

        subs = gather(SerialSubtractor)
        self._sub_idx = np.array([index[id(c)] for c in subs], dtype=np.int64)
        self._sub_a = np.array([index[id(c.a)] for c in subs], dtype=np.int64)
        self._sub_b = np.array([index[id(c.b)] for c in subs], dtype=np.int64)

        negs = gather(SerialNegator)
        self._neg_idx = np.array([index[id(c)] for c in negs], dtype=np.int64)
        self._neg_b = np.array([index[id(c.b)] for c in negs], dtype=np.int64)

        dffs = gather(DFF)
        self._dff_idx = np.array([index[id(c)] for c in dffs], dtype=np.int64)
        self._dff_d = np.array([index[id(c.d)] for c in dffs], dtype=np.int64)

        self._probe_idx = np.array(
            [index[id(p.src)] for p in circuit.column_probes], dtype=np.int64
        )

        self._carry_slot: dict[int, tuple[str, int]] = {}
        for k, c in enumerate(adders):
            self._carry_slot[id(c)] = ("add", k)
        for k, c in enumerate(subs):
            self._carry_slot[id(c)] = ("sub", k)
        for k, c in enumerate(negs):
            self._carry_slot[id(c)] = ("neg", k)

    @classmethod
    def from_compiled(cls, circuit: CompiledCircuit) -> "FastCircuit":
        return cls(circuit)

    # -- validation ---------------------------------------------------------

    def _validate_batch(self, vectors: np.ndarray) -> np.ndarray:
        """Shape/range checks shared by every engine, scalar included."""
        arr = np.atleast_2d(np.asarray(vectors))
        if arr.ndim != 2:
            raise ValueError(
                f"expected a (batch, rows) array of vectors, got shape {arr.shape}"
            )
        if arr.shape[1] != self.plan.rows:
            raise ValueError(
                f"vector length {arr.shape[1]} != matrix rows {self.plan.rows}"
            )
        arr = arr.astype(np.int64)
        lo, hi = signed_range(self.plan.input_width)
        bad = (arr < lo) | (arr > hi)
        if np.any(bad):
            v = int(arr[bad][0])
            raise ValueError(f"input {v} does not fit in s{self.plan.input_width}")
        return arr

    # -- fault plumbing -----------------------------------------------------

    def _fault_overrides(self):
        """Snapshot the netlist's injected faults into engine-level plans.

        Returns ``(stuck_out, carry)`` where ``stuck_out`` is a list of
        ``(component index, value)`` applied post-commit, and ``carry``
        maps ``"add"/"sub"/"neg"`` to ``(slot, value)`` lists applied to
        the packed carry planes before each compute — the same schedule
        the object engine uses in :meth:`Netlist.step`.
        """
        stuck_out: list[tuple[int, int]] = []
        carry: dict[str, list[tuple[int, int]]] = {"add": [], "sub": [], "neg": []}
        for component, kind, value in self.netlist.iter_faults():
            if kind == "stuck_output":
                stuck_out.append((self._global_index[id(component)], value))
            else:
                slot = self._carry_slot.get(id(component))
                if slot is None:
                    # The object engine fails on this too (no carry register
                    # to force); fail loudly rather than silently simulating
                    # fault-free and corrupting campaign coverage data.
                    raise ValueError(
                        f"stuck_carry fault on {type(component).__name__} "
                        f"{component.name!r}, which has no carry register"
                    )
                carry[slot[0]].append((slot[1], value))
        return stuck_out, carry

    # -- public API ---------------------------------------------------------

    def multiply(self, vector: np.ndarray | list[int]) -> np.ndarray:
        """Cycle-accurate ``a^T V``, bit-exact with the object simulator."""
        values = np.asarray(vector).ravel()
        batch = self._validate_batch(values[None, :])
        return self._run_dense(batch)[0]

    def multiply_batch(
        self, vectors: np.ndarray, engine: str = "bitplane"
    ) -> np.ndarray:
        """Evaluate a ``(B, rows)`` batch of vectors; returns ``(B, cols)``.

        ``engine`` selects the execution strategy:

        * ``"scalar"`` — per-vector loop over :meth:`multiply` (the seed
          behaviour; useful as a baseline and for debugging);
        * ``"batched"`` — one cycle loop with a dense batch axis;
        * ``"bitplane"`` — the same loop with 64 lanes packed per
          ``uint64`` word (default, fastest).

        All engines validate identically and produce bit-identical
        results, including under injected faults.
        """
        if engine not in self.ENGINES:
            raise ValueError(f"engine must be one of {self.ENGINES}, got {engine!r}")
        batch = self._validate_batch(vectors)
        if batch.shape[0] == 0:
            dtype = np.int64 if self.plan.result_width <= 62 else object
            return np.zeros((0, len(self._probe_idx)), dtype=dtype)
        if engine == "scalar":
            return np.stack([self.multiply(row) for row in batch])
        if engine == "batched":
            return self._run_dense(batch)
        return self._run_bitplane(batch)

    # -- shared helpers -----------------------------------------------------

    def _input_bit_streams(self, batch: np.ndarray) -> np.ndarray:
        """``(B, rows, cycles)`` sign-extended LSb-first input bits."""
        cycles = self.run_cycles
        width = self.plan.input_width
        shifts = np.minimum(np.arange(cycles), width - 1).astype(np.int64)
        return ((batch[:, :, None] >> shifts[None, None, :]) & 1).astype(np.int8)

    def _decode_bits(self, bits: np.ndarray) -> np.ndarray:
        """Decode ``(B, probes, result_width)`` two's-complement bit slabs."""
        width = self.plan.result_width
        if width <= 62:
            weights = np.left_shift(np.int64(1), np.arange(width, dtype=np.int64))
            weights[-1] = -weights[-1]
            return bits.astype(np.int64) @ weights
        out = np.empty(bits.shape[:2], dtype=object)
        for b in range(bits.shape[0]):
            for j in range(bits.shape[1]):
                out[b, j] = from_twos_complement_bits(
                    [int(x) for x in bits[b, j]]
                )
        return out

    # -- dense batched engine ------------------------------------------------

    def _run_dense(self, batch: np.ndarray) -> np.ndarray:
        lanes = batch.shape[0]
        cycles = self.run_cycles
        input_bits = self._input_bit_streams(batch)
        stuck_out, carry_faults = self._fault_overrides()
        out = np.zeros((lanes, self.size), dtype=np.int8)
        add_carry = np.zeros((lanes, len(self._add_idx)), dtype=np.int8)
        sub_carry = np.ones((lanes, len(self._sub_idx)), dtype=np.int8)
        neg_carry = np.ones((lanes, len(self._neg_idx)), dtype=np.int8)
        captured = np.zeros((lanes, len(self._probe_idx), cycles), dtype=np.int8)
        for cycle in range(cycles):
            for slot, value in carry_faults["add"]:
                add_carry[:, slot] = value
            for slot, value in carry_faults["sub"]:
                sub_carry[:, slot] = value
            for slot, value in carry_faults["neg"]:
                neg_carry[:, slot] = value
            nxt = out.copy()
            nxt[:, self._input_idx] = input_bits[:, :, cycle]
            if len(self._add_idx):
                total = out[:, self._add_a] + out[:, self._add_b] + add_carry
                nxt[:, self._add_idx] = total & 1
                add_carry = total >> 1
            if len(self._sub_idx):
                total = out[:, self._sub_a] + (1 - out[:, self._sub_b]) + sub_carry
                nxt[:, self._sub_idx] = total & 1
                sub_carry = total >> 1
            if len(self._neg_idx):
                total = (1 - out[:, self._neg_b]) + neg_carry
                nxt[:, self._neg_idx] = total & 1
                neg_carry = total >> 1
            if len(self._dff_idx):
                nxt[:, self._dff_idx] = out[:, self._dff_d]
            for idx, value in stuck_out:
                nxt[:, idx] = value
            out = nxt
            captured[:, :, cycle] = out[:, self._probe_idx]
        width = self.plan.result_width
        slab = captured[:, :, self.decode_delta : self.decode_delta + width]
        return self._decode_bits(slab)

    # -- bit-plane engine ----------------------------------------------------

    def _run_bitplane(self, batch: np.ndarray) -> np.ndarray:
        lanes = batch.shape[0]
        cycles = self.run_cycles
        words = -(-lanes // _WORD_BITS)
        input_words = pack_lanes(self._input_bit_streams(batch))
        stuck_out, carry_faults = self._fault_overrides()
        fault_word = {0: np.uint64(0), 1: _ALL_ONES}
        out = np.zeros((words, self.size), dtype=np.uint64)
        add_carry = np.zeros((words, len(self._add_idx)), dtype=np.uint64)
        sub_carry = np.full((words, len(self._sub_idx)), _ALL_ONES, dtype=np.uint64)
        neg_carry = np.full((words, len(self._neg_idx)), _ALL_ONES, dtype=np.uint64)
        captured = np.zeros(
            (words, len(self._probe_idx), cycles), dtype=np.uint64
        )
        for cycle in range(cycles):
            for slot, value in carry_faults["add"]:
                add_carry[:, slot] = fault_word[value]
            for slot, value in carry_faults["sub"]:
                sub_carry[:, slot] = fault_word[value]
            for slot, value in carry_faults["neg"]:
                neg_carry[:, slot] = fault_word[value]
            nxt = out.copy()
            nxt[:, self._input_idx] = input_words[:, :, cycle]
            if len(self._add_idx):
                a = out[:, self._add_a]
                b = out[:, self._add_b]
                axb = a ^ b
                nxt[:, self._add_idx] = axb ^ add_carry
                add_carry = (a & b) | (axb & add_carry)
            if len(self._sub_idx):
                a = out[:, self._sub_a]
                b = ~out[:, self._sub_b]
                axb = a ^ b
                nxt[:, self._sub_idx] = axb ^ sub_carry
                sub_carry = (a & b) | (axb & sub_carry)
            if len(self._neg_idx):
                b = ~out[:, self._neg_b]
                nxt[:, self._neg_idx] = b ^ neg_carry
                neg_carry = b & neg_carry
            if len(self._dff_idx):
                nxt[:, self._dff_idx] = out[:, self._dff_d]
            for idx, value in stuck_out:
                nxt[:, idx] = fault_word[value]
            out = nxt
            captured[:, :, cycle] = out[:, self._probe_idx]
        width = self.plan.result_width
        slab = captured[:, :, self.decode_delta : self.decode_delta + width]
        return self._decode_bits(unpack_lanes(slab, lanes))


# Every way to execute a compiled netlist: the object-graph simulator
# plus the three FastCircuit strategies.  Consumers that accept an
# ``engine`` argument (SramWrapper, fault_campaign) validate against
# this single list.
ALL_ENGINES = ("object",) + FastCircuit.ENGINES
