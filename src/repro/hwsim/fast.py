"""Vectorized gate-level simulation: same netlist, numpy-speed cycles.

The object-graph simulator (:mod:`repro.hwsim.netlist`) is ideal for
probing, fault injection and waveform dumps, but costs one Python call
per component per cycle.  :class:`FastCircuit` compiles the *same*
netlist into index arrays and evaluates whole component classes with
numpy per cycle — typically two to three orders of magnitude faster —
making bit-exact gate-level verification practical for matrices in the
hundreds of rows/columns.

Because every output is registered, evaluation order is irrelevant: each
cycle reads the previous cycle's output vector and writes a fresh one.
Equivalence with the object simulator is asserted by tests on random
matrices, so either engine can stand in for the other.
"""

from __future__ import annotations

import numpy as np

from repro.core.bits import decode_twos_complement_stream, sign_extended_stream, signed_range
from repro.hwsim.builder import CompiledCircuit
from repro.hwsim.components import (
    DFF,
    InputStream,
    SerialAdder,
    SerialNegator,
    SerialSubtractor,
)

__all__ = ["FastCircuit"]


class FastCircuit:
    """A compiled circuit lowered to vectorized per-class updates."""

    def __init__(self, circuit: CompiledCircuit) -> None:
        self.plan = circuit.plan
        self.decode_delta = circuit.decode_delta
        self.run_cycles = circuit.run_cycles
        components = circuit.netlist.components
        index = {id(c): i for i, c in enumerate(components)}
        self.size = len(components)

        self._input_idx = np.array(
            [index[id(c)] for c in components if isinstance(c, InputStream)],
            dtype=np.int64,
        )

        def gather(kind):
            return [c for c in components if type(c) is kind]

        adders = gather(SerialAdder)
        self._add_idx = np.array([index[id(c)] for c in adders], dtype=np.int64)
        self._add_a = np.array([index[id(c.a)] for c in adders], dtype=np.int64)
        self._add_b = np.array([index[id(c.b)] for c in adders], dtype=np.int64)

        subs = gather(SerialSubtractor)
        self._sub_idx = np.array([index[id(c)] for c in subs], dtype=np.int64)
        self._sub_a = np.array([index[id(c.a)] for c in subs], dtype=np.int64)
        self._sub_b = np.array([index[id(c.b)] for c in subs], dtype=np.int64)

        negs = gather(SerialNegator)
        self._neg_idx = np.array([index[id(c)] for c in negs], dtype=np.int64)
        self._neg_b = np.array([index[id(c.b)] for c in negs], dtype=np.int64)

        dffs = gather(DFF)
        self._dff_idx = np.array([index[id(c)] for c in dffs], dtype=np.int64)
        self._dff_d = np.array([index[id(c.d)] for c in dffs], dtype=np.int64)

        self._probe_idx = np.array(
            [index[id(p.src)] for p in circuit.column_probes], dtype=np.int64
        )

    @classmethod
    def from_compiled(cls, circuit: CompiledCircuit) -> "FastCircuit":
        return cls(circuit)

    def multiply(self, vector: np.ndarray | list[int]) -> np.ndarray:
        """Cycle-accurate ``a^T V``, bit-exact with the object simulator."""
        values = [int(v) for v in np.asarray(vector).ravel()]
        if len(values) != self.plan.rows:
            raise ValueError(
                f"vector length {len(values)} != matrix rows {self.plan.rows}"
            )
        lo, hi = signed_range(self.plan.input_width)
        for v in values:
            if not lo <= v <= hi:
                raise ValueError(f"input {v} does not fit in s{self.plan.input_width}")
        cycles = self.run_cycles
        input_bits = np.array(
            [
                sign_extended_stream(v, self.plan.input_width, cycles)
                for v in values
            ],
            dtype=np.int8,
        )
        out = np.zeros(self.size, dtype=np.int8)
        add_carry = np.zeros(len(self._add_idx), dtype=np.int8)
        sub_carry = np.ones(len(self._sub_idx), dtype=np.int8)
        neg_carry = np.ones(len(self._neg_idx), dtype=np.int8)
        captured = np.zeros((len(self._probe_idx), cycles), dtype=np.int8)
        for cycle in range(cycles):
            nxt = out.copy()
            nxt[self._input_idx] = input_bits[:, cycle]
            if len(self._add_idx):
                total = out[self._add_a] + out[self._add_b] + add_carry
                nxt[self._add_idx] = total & 1
                add_carry = total >> 1
            if len(self._sub_idx):
                total = out[self._sub_a] + (1 - out[self._sub_b]) + sub_carry
                nxt[self._sub_idx] = total & 1
                sub_carry = total >> 1
            if len(self._neg_idx):
                total = (1 - out[self._neg_b]) + neg_carry
                nxt[self._neg_idx] = total & 1
                neg_carry = total >> 1
            if len(self._dff_idx):
                nxt[self._dff_idx] = out[self._dff_d]
            out = nxt
            captured[:, cycle] = out[self._probe_idx]
        width = self.plan.result_width
        dtype = np.int64 if width <= 62 else object
        result = np.zeros(len(self._probe_idx), dtype=dtype)
        for j in range(len(self._probe_idx)):
            stream = captured[j, self.decode_delta : self.decode_delta + width]
            result[j] = decode_twos_complement_stream(list(stream), width)
        return result

    def multiply_batch(self, vectors: np.ndarray) -> np.ndarray:
        matrix = np.atleast_2d(np.asarray(vectors))
        return np.stack([self.multiply(row) for row in matrix])
