"""Vectorized and bit-plane-batched gate-level simulation engines.

The repository ships four ways to execute one compiled netlist, each
bit-exact with the others (equivalence is asserted by tests on random
matrices, so any engine can stand in for any other):

* **object engine** (:mod:`repro.hwsim.netlist`) — one Python object per
  gate, one call per component per cycle.  Ideal for probing, waveform
  dumps and fault injection experiments; slowest by two to three orders
  of magnitude.
* **vectorized engine** (:class:`FastCircuit`, ``multiply`` /
  ``multiply_batch(engine="batched")``) — the same netlist compiled to
  index arrays; every component *class* updates with a handful of numpy
  ops per cycle.  ``multiply_batch(engine="batched")`` adds a leading
  batch axis so ``B`` independent input vectors stream through the same
  compiled structure in one cycle loop — the paper's sequential-batching
  wrapper collapsed into a single simulation pass.
* **bit-plane engine** (``multiply_batch(engine="bitplane")``, the
  default) — up to 64 batch lanes are packed into each ``uint64`` word
  ("bit-planes"), so one bitwise numpy op per component class per cycle
  advances all lanes at once: a serial adder over all lanes is three
  XOR/AND/OR expressions, not a per-lane add.  Batches larger than 64
  simply use multiple words.  This is the fastest *gate-level* engine —
  the one fault campaigns and verification runs should use; at batch >=
  64 it is well over an order of magnitude faster than looping the
  scalar path.
* **fused engine** (``multiply_batch(engine="fused")``) — not a
  simulation at all: :func:`repro.hwsim.fused.fuse` recovers the static
  CSD shift-add schedule from the kernel's topology once, and execution
  is a handful of vectorized int64 ops with **no cycle loop** (see
  :mod:`repro.hwsim.fused`).  Another order of magnitude faster than the
  bit-plane engine, bit-exact with it — but linear-only: it refuses to
  run while faults or per-call overrides are active (the serve layer
  auto-falls back to ``bitplane`` in that case).

Staged compilation
------------------

Since the matrix is fixed, everything between the matrix and the cycle
loop is a pure, cacheable transformation.  The pipeline has a
serializable artifact at each boundary::

    MatrixPlan --build_circuit--> Netlist --lower--> LoweredKernel --fuse--> FusedKernel

:func:`lower` extracts the flat index/opcode arrays the engines actually
execute into a :class:`LoweredKernel` — plain numpy arrays plus a few
scalars, with **no reference to component objects** — so a kernel can be
pickled to a worker process or persisted to disk
(:func:`repro.core.serialize.kernel_to_npz`) and re-executed without
ever rebuilding the netlist.  ``FastCircuit(kernel)`` is the execution
half; ``FastCircuit.from_compiled(circuit)`` remains the one-step
convenience that lowers and binds the live netlist.

Because every output is registered, evaluation order is irrelevant: each
cycle reads the previous cycle's output vector and writes a fresh one.
All engines honour faults injected on the underlying
:class:`~repro.hwsim.netlist.Netlist` (``stuck_output`` applied
post-commit, ``stuck_carry`` pre-compute), matching the object engine's
semantics exactly, so verification campaigns may run on whichever engine
is fastest for the batch at hand.  Lowering snapshots any faults present
on the netlist into the kernel (so persisted faulty kernels stay
faulty), while a :class:`FastCircuit` bound to a live netlist re-reads
the injected fault set on every call; the snapshot/live distinction is
also what lets process-level shards replay the parent's current faults
deterministically (see ``overrides`` on :meth:`FastCircuit.multiply_batch`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.core.stages import STAGES
from repro.hwsim.builder import CompiledCircuit
from repro.hwsim.components import (
    DFF,
    InputStream,
    SerialAdder,
    SerialNegator,
    SerialSubtractor,
)
from repro.hwsim.fused import FusedCircuit, FusedKernel, fuse, validate_batch

__all__ = [
    "FastCircuit",
    "LoweredKernel",
    "lower",
    "ALL_ENGINES",
    "pack_lanes",
    "unpack_lanes",
]

_WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

# Carry-bearing primitive classes, in the order their kind codes are
# assigned inside a LoweredKernel's fault snapshot arrays.
CARRY_KINDS = ("add", "sub", "neg")


def pack_lanes(bits: np.ndarray) -> np.ndarray:
    """Pack a leading batch axis of 0/1 values into ``uint64`` bit-planes.

    ``bits`` has shape ``(lanes, ...)``; the result has shape
    ``(ceil(lanes / 64), ...)`` where bit ``l`` of word ``w`` holds lane
    ``w * 64 + l``.  Unused trailing lanes are zero.
    """
    arr = np.asarray(bits)
    lanes = arr.shape[0]
    words = max(1, -(-lanes // _WORD_BITS))
    padded = np.zeros((words * _WORD_BITS,) + arr.shape[1:], dtype=np.uint64)
    padded[:lanes] = arr.astype(np.uint64)
    padded = padded.reshape((words, _WORD_BITS) + arr.shape[1:])
    shifts = np.arange(_WORD_BITS, dtype=np.uint64).reshape(
        (1, _WORD_BITS) + (1,) * (arr.ndim - 1)
    )
    return np.bitwise_or.reduce(padded << shifts, axis=1)


def unpack_lanes(words: np.ndarray, lanes: int) -> np.ndarray:
    """Inverse of :func:`pack_lanes`: recover the first ``lanes`` lanes."""
    arr = np.asarray(words, dtype=np.uint64)
    shifts = np.arange(_WORD_BITS, dtype=np.uint64).reshape(
        (1, _WORD_BITS) + (1,) * (arr.ndim - 1)
    )
    bits = (arr[:, None] >> shifts) & np.uint64(1)
    flat = bits.reshape((arr.shape[0] * _WORD_BITS,) + arr.shape[1:])
    return flat[:lanes].astype(np.int8)


@dataclass(frozen=True, eq=False)
class LoweredKernel:
    """The flat, executable form of one compiled spatial multiplier.

    Everything the cycle engines touch, and nothing else: index arrays
    naming which component slots are inputs/adders/subtractors/negators/
    DFFs (plus their operand slots and the output probes), the scalar
    execution parameters, and a snapshot of any faults that were injected
    on the netlist at lowering time.

    A kernel is deliberately *dumb data* — numpy arrays and scalars — so
    it is picklable (process-level sharding ships kernels to workers
    once) and serializable (:mod:`repro.core.serialize` persists kernels
    as ``.npz`` artifacts keyed by ``fingerprint``).  Execution is
    ``FastCircuit(kernel)``.  ``fingerprint`` is the *plan* fingerprint:
    equal fingerprints imply identical circuit structure, hence
    bit-identical behaviour *between fault-free kernels* — the fault
    snapshot is not part of the fingerprint (check :attr:`has_faults`;
    the compile cache refuses fault-bearing artifacts for exactly this
    reason).
    """

    fingerprint: str
    rows: int
    cols: int
    input_width: int
    result_width: int
    decode_delta: int
    run_cycles: int
    size: int
    input_idx: np.ndarray
    add_idx: np.ndarray
    add_a: np.ndarray
    add_b: np.ndarray
    sub_idx: np.ndarray
    sub_a: np.ndarray
    sub_b: np.ndarray
    neg_idx: np.ndarray
    neg_b: np.ndarray
    dff_idx: np.ndarray
    dff_d: np.ndarray
    probe_idx: np.ndarray
    # Fault snapshot: stuck outputs as (component slot, value) pairs and
    # stuck carries as (kind code, per-kind slot, value) triples, where
    # the kind code indexes CARRY_KINDS.
    stuck_idx: np.ndarray
    stuck_val: np.ndarray
    carry_kind: np.ndarray
    carry_slot: np.ndarray
    carry_val: np.ndarray

    #: Names of every array field, in declaration order — the contract
    #: between this class and the .npz serializer.
    ARRAY_FIELDS = (
        "input_idx",
        "add_idx",
        "add_a",
        "add_b",
        "sub_idx",
        "sub_a",
        "sub_b",
        "neg_idx",
        "neg_b",
        "dff_idx",
        "dff_d",
        "probe_idx",
        "stuck_idx",
        "stuck_val",
        "carry_kind",
        "carry_slot",
        "carry_val",
    )

    #: Names of every scalar field (the .npz JSON header).
    SCALAR_FIELDS = (
        "fingerprint",
        "rows",
        "cols",
        "input_width",
        "result_width",
        "decode_delta",
        "run_cycles",
        "size",
    )

    def __post_init__(self) -> None:
        for name in self.ARRAY_FIELDS:
            arr = np.ascontiguousarray(getattr(self, name), dtype=np.int64)
            if arr.ndim != 1:
                raise ValueError(f"kernel field {name} must be 1-D, got {arr.shape}")
            object.__setattr__(self, name, arr)
        pairs = (
            ("add_idx", "add_a"),
            ("add_idx", "add_b"),
            ("sub_idx", "sub_a"),
            ("sub_idx", "sub_b"),
            ("neg_idx", "neg_b"),
            ("dff_idx", "dff_d"),
            ("stuck_idx", "stuck_val"),
            ("carry_kind", "carry_slot"),
            ("carry_kind", "carry_val"),
        )
        for a, b in pairs:
            if len(getattr(self, a)) != len(getattr(self, b)):
                raise ValueError(f"kernel fields {a}/{b} disagree in length")

    @property
    def has_faults(self) -> bool:
        """True when the lowering-time fault snapshot is non-empty."""
        return bool(len(self.stuck_idx) or len(self.carry_kind))

    def static_overrides(self) -> tuple[list, dict]:
        """The fault snapshot in the engines' override schedule form."""
        stuck_out = [
            (int(i), int(v)) for i, v in zip(self.stuck_idx, self.stuck_val)
        ]
        carry: dict[str, list[tuple[int, int]]] = {k: [] for k in CARRY_KINDS}
        for kind, slot, value in zip(
            self.carry_kind, self.carry_slot, self.carry_val
        ):
            carry[CARRY_KINDS[int(kind)]].append((int(slot), int(value)))
        return stuck_out, carry

    def equivalent(self, other: "LoweredKernel") -> bool:
        """Field-by-field equality (arrays compared element-wise)."""
        for field in fields(self):
            mine, theirs = getattr(self, field.name), getattr(other, field.name)
            if field.name in self.ARRAY_FIELDS:
                if not np.array_equal(mine, theirs):
                    return False
            elif mine != theirs:
                return False
        return True


def _lower_with_maps(
    circuit: CompiledCircuit,
) -> tuple[LoweredKernel, dict[int, int], dict[int, tuple[str, int]]]:
    """Lower a compiled circuit, also returning the live-netlist maps.

    The maps (``id(component) -> flat slot`` and ``id(component) ->
    (carry kind, per-kind slot)``) let a :class:`FastCircuit` bound to
    the netlist translate *later* fault injections into engine
    overrides; they are deliberately not part of the kernel, which must
    stay object-free.
    """
    STAGES.increment("lower")
    plan = circuit.plan
    components = circuit.netlist.components
    index = {id(c): i for i, c in enumerate(components)}

    input_idx = [index[id(c)] for c in components if isinstance(c, InputStream)]

    def gather(kind):
        return [c for c in components if type(c) is kind]

    adders = gather(SerialAdder)
    subs = gather(SerialSubtractor)
    negs = gather(SerialNegator)
    dffs = gather(DFF)

    carry_slot: dict[int, tuple[str, int]] = {}
    for kind, group in zip(CARRY_KINDS, (adders, subs, negs)):
        for k, c in enumerate(group):
            carry_slot[id(c)] = (kind, k)

    stuck_idx: list[int] = []
    stuck_val: list[int] = []
    carry_kind: list[int] = []
    carry_slots: list[int] = []
    carry_val: list[int] = []
    for component, kind, value in circuit.netlist.iter_faults():
        if kind == "stuck_output":
            stuck_idx.append(index[id(component)])
            stuck_val.append(value)
        else:
            slot = carry_slot.get(id(component))
            if slot is None:
                # The object engine fails on this too (no carry register
                # to force); fail loudly rather than silently lowering a
                # fault-free kernel and corrupting campaign coverage.
                raise ValueError(
                    f"stuck_carry fault on {type(component).__name__} "
                    f"{component.name!r}, which has no carry register"
                )
            carry_kind.append(CARRY_KINDS.index(slot[0]))
            carry_slots.append(slot[1])
            carry_val.append(value)

    kernel = LoweredKernel(
        fingerprint=circuit.digest,
        rows=plan.rows,
        cols=len(circuit.column_probes),
        input_width=plan.input_width,
        result_width=plan.result_width,
        decode_delta=circuit.decode_delta,
        run_cycles=circuit.run_cycles,
        size=len(components),
        input_idx=np.array(input_idx, dtype=np.int64),
        add_idx=np.array([index[id(c)] for c in adders], dtype=np.int64),
        add_a=np.array([index[id(c.a)] for c in adders], dtype=np.int64),
        add_b=np.array([index[id(c.b)] for c in adders], dtype=np.int64),
        sub_idx=np.array([index[id(c)] for c in subs], dtype=np.int64),
        sub_a=np.array([index[id(c.a)] for c in subs], dtype=np.int64),
        sub_b=np.array([index[id(c.b)] for c in subs], dtype=np.int64),
        neg_idx=np.array([index[id(c)] for c in negs], dtype=np.int64),
        neg_b=np.array([index[id(c.b)] for c in negs], dtype=np.int64),
        dff_idx=np.array([index[id(c)] for c in dffs], dtype=np.int64),
        dff_d=np.array([index[id(c.d)] for c in dffs], dtype=np.int64),
        probe_idx=np.array(
            [index[id(p.src)] for p in circuit.column_probes], dtype=np.int64
        ),
        stuck_idx=np.array(stuck_idx, dtype=np.int64),
        stuck_val=np.array(stuck_val, dtype=np.int64),
        carry_kind=np.array(carry_kind, dtype=np.int64),
        carry_slot=np.array(carry_slots, dtype=np.int64),
        carry_val=np.array(carry_val, dtype=np.int64),
    )
    return kernel, index, carry_slot


def lower(circuit: CompiledCircuit) -> LoweredKernel:
    """Lower a compiled netlist to its flat executable arrays.

    A pure function of the circuit's structure plus its currently
    injected faults; the result is position-independent data, ready to
    pickle, persist, or execute via ``FastCircuit(kernel)``.
    """
    kernel, _, _ = _lower_with_maps(circuit)
    return kernel


class FastCircuit:
    """Execute a :class:`LoweredKernel` with vectorized per-class updates.

    Two construction paths:

    * ``FastCircuit.from_compiled(circuit)`` (or ``FastCircuit(circuit)``)
      lowers the circuit and keeps the live netlist bound, so faults
      injected on the netlist *after* construction are honoured on the
      next call — the behaviour verification campaigns rely on;
    * ``FastCircuit(kernel)`` executes a pre-lowered kernel (from the
      compile cache's disk artifacts or a pickled shard) with no netlist
      anywhere in the process; the kernel's fault snapshot applies.
    """

    ENGINES = ("scalar", "batched", "bitplane", "fused")

    #: Engines that honour injected faults / per-call overrides.  The
    #: fused engine is linear-only and raises when any fault is active.
    FAULT_CAPABLE_ENGINES = ("scalar", "batched", "bitplane")

    def __init__(
        self,
        source: CompiledCircuit | LoweredKernel,
        plan=None,
        fused: FusedKernel | None = None,
        codegen_source: str | None = None,
    ) -> None:
        if isinstance(source, LoweredKernel):
            self.kernel = source
            self.plan = plan
            self.netlist = None
            self._global_index: dict[int, int] | None = None
            self._carry_slot: dict[int, tuple[str, int]] | None = None
        elif isinstance(source, CompiledCircuit):
            self.kernel, self._global_index, self._carry_slot = _lower_with_maps(
                source
            )
            self.plan = source.plan
            self.netlist = source.netlist
        else:
            raise TypeError(
                f"FastCircuit takes a CompiledCircuit or LoweredKernel, "
                f"got {type(source).__name__}"
            )
        k = self.kernel
        self.decode_delta = k.decode_delta
        self.run_cycles = k.run_cycles
        self.size = k.size
        self._input_idx = k.input_idx
        self._add_idx, self._add_a, self._add_b = k.add_idx, k.add_a, k.add_b
        self._sub_idx, self._sub_a, self._sub_b = k.sub_idx, k.sub_a, k.sub_b
        self._neg_idx, self._neg_b = k.neg_idx, k.neg_b
        self._dff_idx, self._dff_d = k.dff_idx, k.dff_d
        self._probe_idx = k.probe_idx
        if fused is not None and fused.fingerprint != k.fingerprint:
            raise ValueError(
                "fused kernel fingerprint does not match the lowered kernel"
            )
        self._fused_kernel = fused
        #: Cached generated executor source (the ``.codegen.py``
        #: artifact) — attached by the compile cache so sparse kernels
        #: skip the ``codegen`` stage on warm deploys.  ``None`` means
        #: generate on demand if the selector picks that variant.
        self.codegen_source = codegen_source
        # The executor is built lazily on first fused execution so that
        # attaching artifacts never materializes executor state (e.g.
        # the dense fold) the selector may decide against.
        self._fused_exec: FusedCircuit | None = None

    @classmethod
    def from_compiled(cls, circuit: CompiledCircuit) -> "FastCircuit":
        return cls(circuit)

    # -- fused lowering ------------------------------------------------------

    @property
    def fused(self) -> FusedKernel | None:
        """The attached/derived fused kernel, if one exists (no forcing)."""
        return self._fused_kernel

    def fuse(self) -> FusedKernel:
        """The kernel's shift-add schedule, fusing (once) on first use.

        Runs the ``fuse`` pipeline stage unless a pre-fused kernel was
        attached at construction (the compile cache attaches persisted
        artifacts, so warm deploys never re-fuse).
        """
        if self._fused_kernel is None:
            self._fused_kernel = fuse(self.kernel)
        return self._fused_kernel

    def _fused_circuit(self) -> FusedCircuit:
        if self._fused_exec is None:
            self._fused_exec = FusedCircuit(self.fuse(), source=self.codegen_source)
        return self._fused_exec

    @property
    def fused_variant(self) -> str:
        """The executor variant fused execution uses (building it if needed).

        One of :attr:`FusedCircuit.VARIANTS` — the label telemetry,
        spans, and cluster STATS report as ``fused:<variant>`` so
        operators can tell which code actually ran.
        """
        return self._fused_circuit().variant

    @property
    def resolved_fused_variant(self) -> str | None:
        """The already-built executor's variant, or ``None`` (no forcing).

        Telemetry scrapes use this: reporting must never trigger fuse
        or codegen work on a deployment that has not executed fused.
        """
        return self._fused_exec.variant if self._fused_exec is not None else None

    @property
    def has_faults(self) -> bool:
        """True when any fault would apply to the next execution."""
        stuck_out, carry = self.fault_overrides()
        return bool(stuck_out) or any(carry.values())

    # -- validation ---------------------------------------------------------

    def _validate_batch(self, vectors: np.ndarray) -> np.ndarray:
        """Shape/range checks shared by every engine, scalar included."""
        return validate_batch(vectors, self.kernel.rows, self.kernel.input_width)

    # -- fault plumbing -----------------------------------------------------

    def fault_overrides(self) -> tuple[list, dict]:
        """The fault set to apply on the next execution.

        Returns ``(stuck_out, carry)`` where ``stuck_out`` is a list of
        ``(component index, value)`` applied post-commit, and ``carry``
        maps ``"add"/"sub"/"neg"`` to ``(slot, value)`` lists applied to
        the packed carry planes before each compute — the same schedule
        the object engine uses in :meth:`Netlist.step`.

        With a live netlist bound, the netlist's *current* injected
        faults are translated; a bare kernel replays its lowering-time
        snapshot.  Either form is picklable and can be handed to a
        worker's :meth:`multiply_batch` as ``overrides``.
        """
        if self.netlist is None:
            return self.kernel.static_overrides()
        stuck_out: list[tuple[int, int]] = []
        carry: dict[str, list[tuple[int, int]]] = {k: [] for k in CARRY_KINDS}
        for component, kind, value in self.netlist.iter_faults():
            if kind == "stuck_output":
                stuck_out.append((self._global_index[id(component)], value))
            else:
                slot = self._carry_slot.get(id(component))
                if slot is None:
                    # The object engine fails on this too (no carry register
                    # to force); fail loudly rather than silently simulating
                    # fault-free and corrupting campaign coverage data.
                    raise ValueError(
                        f"stuck_carry fault on {type(component).__name__} "
                        f"{component.name!r}, which has no carry register"
                    )
                carry[slot[0]].append((slot[1], value))
        return stuck_out, carry

    # -- public API ---------------------------------------------------------

    def multiply(self, vector: np.ndarray | list[int]) -> np.ndarray:
        """Cycle-accurate ``a^T V``, bit-exact with the object simulator."""
        values = np.asarray(vector).ravel()
        batch = self._validate_batch(values[None, :])
        return self._run_dense(batch, None)[0]

    def multiply_batch(
        self,
        vectors: np.ndarray,
        engine: str = "bitplane",
        overrides: tuple[list, dict] | None = None,
    ) -> np.ndarray:
        """Evaluate a ``(B, rows)`` batch of vectors; returns ``(B, cols)``.

        ``engine`` selects the execution strategy:

        * ``"scalar"`` — per-vector loop over the dense engine (the seed
          behaviour; useful as a baseline and for debugging);
        * ``"batched"`` — one cycle loop with a dense batch axis;
        * ``"bitplane"`` — the same loop with 64 lanes packed per
          ``uint64`` word (default; fastest gate-level engine);
        * ``"fused"`` — the pre-fused static shift-add schedule, no
          cycle loop at all (:mod:`repro.hwsim.fused`).  Fault-free
          only: raises if faults or non-empty overrides are active.

        ``overrides`` replaces the fault set for this call only (the
        exact structure :meth:`fault_overrides` returns) — the hook
        process-level shards use to replay the parent's live faults on a
        worker that only holds the kernel.  ``None`` means "resolve the
        current faults now".

        All engines validate identically and produce bit-identical
        results, including (for the gate-level engines) under injected
        faults.
        """
        if engine not in self.ENGINES:
            raise ValueError(f"engine must be one of {self.ENGINES}, got {engine!r}")
        batch = self._validate_batch(vectors)
        if engine == "fused":
            stuck_out, carry = (
                overrides if overrides is not None else self.fault_overrides()
            )
            if stuck_out or any(carry.values()):
                raise ValueError(
                    "engine='fused' executes the static shift-add schedule and "
                    "cannot apply faults; use a gate-level engine "
                    f"{self.FAULT_CAPABLE_ENGINES}"
                )
            return self._fused_circuit().execute(batch)
        if batch.shape[0] == 0:
            dtype = np.int64 if self.kernel.result_width <= 62 else object
            return np.zeros((0, len(self._probe_idx)), dtype=dtype)
        if engine == "scalar":
            return np.stack(
                [self._run_dense(row[None, :], overrides)[0] for row in batch]
            )
        if engine == "batched":
            return self._run_dense(batch, overrides)
        return self._run_bitplane(batch, overrides)

    # -- shared helpers -----------------------------------------------------

    def _input_bit_streams(self, batch: np.ndarray) -> np.ndarray:
        """``(B, rows, cycles)`` sign-extended LSb-first input bits."""
        cycles = self.run_cycles
        width = self.kernel.input_width
        shifts = np.minimum(np.arange(cycles), width - 1).astype(np.int64)
        return ((batch[:, :, None] >> shifts[None, None, :]) & 1).astype(np.int8)

    def _decode_bits(self, bits: np.ndarray) -> np.ndarray:
        """Decode ``(B, probes, result_width)`` two's-complement bit slabs."""
        width = self.kernel.result_width
        if width <= 62:
            weights = np.left_shift(np.int64(1), np.arange(width, dtype=np.int64))
            weights[-1] = -weights[-1]
            return bits.astype(np.int64) @ weights
        # Wide results decode exactly into Python ints: dot each <= 62-bit
        # limb against int64 power-of-two weights (vectorized over every
        # lane and probe at once), then recombine the limbs — and apply
        # the two's-complement sign — in exact object arithmetic.
        slab = bits.astype(np.int64)
        unsigned: np.ndarray | None = None
        for lo in range(0, width, 62):
            chunk = slab[:, :, lo : min(lo + 62, width)]
            weights = np.left_shift(
                np.int64(1), np.arange(chunk.shape[2], dtype=np.int64)
            )
            limb = (chunk @ weights).astype(object)
            if lo:
                limb *= 1 << lo
            unsigned = limb if unsigned is None else unsigned + limb
        sign = bits[:, :, -1].astype(object)
        return unsigned - sign * (1 << width)

    # -- dense batched engine ------------------------------------------------

    @staticmethod
    def _fault_index_arrays(
        stuck_out: list, carry_faults: dict, values: np.ndarray
    ) -> tuple:
        """Faults as fancy-index ``(slots, values)`` pairs, or ``None``s.

        Hoisted out of the cycle loops: the fault-free hot path tests
        four ``None``s per cycle instead of iterating four Python lists,
        and a faulted run applies each kind with one vectorized
        assignment.  ``values`` maps a fault value 0/1 to the engine's
        lane representation (int8 bits or uint64 planes).
        """

        def pack(pairs):
            if not pairs:
                return None
            slots = np.array([s for s, _ in pairs], dtype=np.int64)
            return slots, values[[v for _, v in pairs]]

        return (
            pack(stuck_out),
            pack(carry_faults["add"]),
            pack(carry_faults["sub"]),
            pack(carry_faults["neg"]),
        )

    def _run_dense(
        self, batch: np.ndarray, overrides: tuple[list, dict] | None
    ) -> np.ndarray:
        lanes = batch.shape[0]
        cycles = self.run_cycles
        input_bits = self._input_bit_streams(batch)
        stuck_out, carry_faults = (
            overrides if overrides is not None else self.fault_overrides()
        )
        stuck, add_f, sub_f, neg_f = self._fault_index_arrays(
            stuck_out, carry_faults, np.array([0, 1], dtype=np.int8)
        )
        # Double-buffered state: every live component class writes its
        # slots every cycle (ConstantZero slots stay at their zero
        # initialization in both buffers), so swapping buffers replaces
        # the per-cycle full-state copy with zero allocation.
        out = np.zeros((lanes, self.size), dtype=np.int8)
        nxt = np.zeros((lanes, self.size), dtype=np.int8)
        add_carry = np.zeros((lanes, len(self._add_idx)), dtype=np.int8)
        sub_carry = np.ones((lanes, len(self._sub_idx)), dtype=np.int8)
        neg_carry = np.ones((lanes, len(self._neg_idx)), dtype=np.int8)
        captured = np.zeros((lanes, len(self._probe_idx), cycles), dtype=np.int8)
        for cycle in range(cycles):
            if add_f is not None:
                add_carry[:, add_f[0]] = add_f[1]
            if sub_f is not None:
                sub_carry[:, sub_f[0]] = sub_f[1]
            if neg_f is not None:
                neg_carry[:, neg_f[0]] = neg_f[1]
            nxt[:, self._input_idx] = input_bits[:, :, cycle]
            if len(self._add_idx):
                total = out[:, self._add_a] + out[:, self._add_b] + add_carry
                nxt[:, self._add_idx] = total & 1
                add_carry = total >> 1
            if len(self._sub_idx):
                total = out[:, self._sub_a] + (1 - out[:, self._sub_b]) + sub_carry
                nxt[:, self._sub_idx] = total & 1
                sub_carry = total >> 1
            if len(self._neg_idx):
                total = (1 - out[:, self._neg_b]) + neg_carry
                nxt[:, self._neg_idx] = total & 1
                neg_carry = total >> 1
            if len(self._dff_idx):
                nxt[:, self._dff_idx] = out[:, self._dff_d]
            if stuck is not None:
                nxt[:, stuck[0]] = stuck[1]
            out, nxt = nxt, out
            captured[:, :, cycle] = out[:, self._probe_idx]
        width = self.kernel.result_width
        slab = captured[:, :, self.decode_delta : self.decode_delta + width]
        return self._decode_bits(slab)

    # -- bit-plane engine ----------------------------------------------------

    def _run_bitplane(
        self, batch: np.ndarray, overrides: tuple[list, dict] | None
    ) -> np.ndarray:
        lanes = batch.shape[0]
        cycles = self.run_cycles
        words = -(-lanes // _WORD_BITS)
        input_words = pack_lanes(self._input_bit_streams(batch))
        stuck_out, carry_faults = (
            overrides if overrides is not None else self.fault_overrides()
        )
        stuck, add_f, sub_f, neg_f = self._fault_index_arrays(
            stuck_out, carry_faults, np.array([0, _ALL_ONES], dtype=np.uint64)
        )
        # Double-buffered, as in _run_dense: no per-cycle state copy.
        out = np.zeros((words, self.size), dtype=np.uint64)
        nxt = np.zeros((words, self.size), dtype=np.uint64)
        add_carry = np.zeros((words, len(self._add_idx)), dtype=np.uint64)
        sub_carry = np.full((words, len(self._sub_idx)), _ALL_ONES, dtype=np.uint64)
        neg_carry = np.full((words, len(self._neg_idx)), _ALL_ONES, dtype=np.uint64)
        captured = np.zeros(
            (words, len(self._probe_idx), cycles), dtype=np.uint64
        )
        for cycle in range(cycles):
            if add_f is not None:
                add_carry[:, add_f[0]] = add_f[1]
            if sub_f is not None:
                sub_carry[:, sub_f[0]] = sub_f[1]
            if neg_f is not None:
                neg_carry[:, neg_f[0]] = neg_f[1]
            nxt[:, self._input_idx] = input_words[:, :, cycle]
            if len(self._add_idx):
                a = out[:, self._add_a]
                b = out[:, self._add_b]
                axb = a ^ b
                nxt[:, self._add_idx] = axb ^ add_carry
                add_carry = (a & b) | (axb & add_carry)
            if len(self._sub_idx):
                a = out[:, self._sub_a]
                b = ~out[:, self._sub_b]
                axb = a ^ b
                nxt[:, self._sub_idx] = axb ^ sub_carry
                sub_carry = (a & b) | (axb & sub_carry)
            if len(self._neg_idx):
                b = ~out[:, self._neg_b]
                nxt[:, self._neg_idx] = b ^ neg_carry
                neg_carry = b & neg_carry
            if len(self._dff_idx):
                nxt[:, self._dff_idx] = out[:, self._dff_d]
            if stuck is not None:
                nxt[:, stuck[0]] = stuck[1]
            out, nxt = nxt, out
            captured[:, :, cycle] = out[:, self._probe_idx]
        width = self.kernel.result_width
        slab = captured[:, :, self.decode_delta : self.decode_delta + width]
        return self._decode_bits(unpack_lanes(slab, lanes))


# Every way to execute a compiled netlist: the object-graph simulator
# plus the three FastCircuit strategies.  Consumers that accept an
# ``engine`` argument (SramWrapper, fault_campaign) validate against
# this single list.
ALL_ENGINES = ("object",) + FastCircuit.ENGINES
