"""The ``codegen`` stage: compile a :class:`FusedKernel` to numpy source.

A fused kernel is a *complete static program* — every gather index,
shift, and sign is known at compile time — so instead of interpreting
the term arrays through generic machinery, this pass emits a tiny
specialized Python module per kernel: the indexing arrays are baked in
as literals and the schedule's *shape* is exploited at generation time.
Outputs are grouped by their term count, so each group reduces with a
fixed-width ``reshape(B, n, k).sum(axis=2)`` — contiguous vectorized
sums instead of the generic ``np.add.reduceat`` the interpreted
segmented executor uses (measurably ~4x faster at high sparsity, where
reduceat's per-segment dispatch dominates).  Degenerate shapes collapse
completely: an empty schedule becomes a pure zero-fill, and
one-term-per-output groups become a gather-scale with no reduction at
all.  The result is einsum-free, loop-free numpy whose arithmetic
scales with the nonzero CSD terms, not the matrix area — the software
analogue of the paper's thesis that spatial multiplier cost tracks
nonzero terms.

Generated source is a **versioned artifact** like the plan/kernel/fused
``.npz`` files: a machine-parseable comment header carries the artifact
kind, format version, and the plan fingerprint of the kernel it was
generated from.  :class:`repro.serve.cache.CompileCache` persists it as
``<stem>.codegen.py`` next to the other artifacts, so warm deploys skip
the ``codegen`` stage entirely (counted in
:data:`repro.core.stages.STAGES`, asserted by the warm-start tests).

Trust model: loading *executes* the source, so it inherits the artifact
store's existing trust boundary — stores are already trusted to supply
the kernels whose schedules we run.  :func:`load_execute` refuses any
source whose kind, format version, or fingerprint does not match the
kernel being served, so a stale or foreign file degrades to a cache
miss (regenerate), never to wrong results.

Only kernels with ``result_width <= 62`` are generatable: wider
accumulations need exact Python integers, which the segmented executor
already provides (see :class:`repro.hwsim.fused.FusedCircuit`).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.core.stages import STAGES
from repro.hwsim.fused import FusedKernel, segment_prefixes

__all__ = [
    "CODEGEN_FORMAT_VERSION",
    "CODEGEN_KIND",
    "generate_source",
    "source_header",
    "load_execute",
]

#: Bump on any change to the generated module's contract (the
#: ``execute`` signature or the header grammar).  Loaders refuse other
#: versions, so old cached source degrades to regeneration, never to a
#: wrong executor.
CODEGEN_FORMAT_VERSION = 1

#: Artifact kind token, first header line of every generated module.
CODEGEN_KIND = "repro-fused-codegen"


def _int_list(values: np.ndarray) -> str:
    """A deterministic Python literal for a 1-D integer array."""
    return "[" + ", ".join(str(int(v)) for v in values) + "]"


def generate_source(kernel: FusedKernel) -> str:
    """Emit the specialized executor module for one fused kernel.

    Pure function of the kernel's term arrays — the same kernel always
    yields byte-identical source (asserted by the determinism test), so
    cached source never spuriously differs from a regeneration.
    Increments the ``codegen`` stage counter; cache hits load persisted
    source through :func:`load_execute` instead and leave the counter
    untouched.
    """
    STAGES.increment("codegen")
    if kernel.result_width > 62:
        raise ValueError(
            f"cannot generate int64 source for a {kernel.result_width}-bit "
            "kernel; accumulations wider than 62 bits run the segmented "
            "executor over exact Python integers"
        )
    starts, segment_out = segment_prefixes(kernel.term_out)
    coeff = kernel.term_sign * np.left_shift(np.int64(1), kernel.term_shift)
    lines = [
        f"# {CODEGEN_KIND}",
        f"# format_version={CODEGEN_FORMAT_VERSION}",
        f"# fingerprint={kernel.fingerprint}",
        f"# rows={kernel.rows} cols={kernel.cols} terms={kernel.terms}",
        f"# input_width={kernel.input_width} result_width={kernel.result_width}",
        "import numpy as np",
        "",
    ]
    if kernel.terms == 0:
        # Zero-term schedule (all-zero matrix): pure zero-fill.
        lines += [
            "def execute(batch):",
            f"    return np.zeros((batch.shape[0], {kernel.cols}), dtype=np.int64)",
        ]
        return "\n".join(lines) + "\n"

    # Group outputs by term count: every output in a group reduces over
    # the same fixed width k, so the reduction is one contiguous
    # reshape-sum per group instead of a generic per-segment reduceat.
    # Group order (ascending k via np.unique) and the index arithmetic
    # are pure functions of the sorted term arrays — determinism holds.
    lengths = np.diff(np.r_[starts, kernel.terms])
    body = [
        "def execute(batch):",
        f"    out = np.zeros((batch.shape[0], {kernel.cols}), dtype=np.int64)",
    ]
    for k in np.unique(lengths):
        k = int(k)
        mask = lengths == k
        outs = segment_out[mask]
        gather = (starts[mask][:, None] + np.arange(k)[None, :]).ravel()
        lines += [
            f"_ROW{k} = np.array({_int_list(kernel.term_row[gather])}, dtype=np.int64)",
            f"_COEFF{k} = np.array({_int_list(coeff[gather])}, dtype=np.int64)",
            f"_OUT{k} = np.array({_int_list(outs)}, dtype=np.int64)",
        ]
        if k == 1:
            # One term per output: the gather-scale is the whole sum.
            body.append(f"    out[:, _OUT{k}] = batch[:, _ROW{k}] * _COEFF{k}")
        else:
            body.append(
                f"    out[:, _OUT{k}] = (batch[:, _ROW{k}] * _COEFF{k})"
                f".reshape(batch.shape[0], {len(outs)}, {k}).sum(axis=2)"
            )
    body.append("    return out")
    lines += [""] + body
    return "\n".join(lines) + "\n"


def source_header(source: str) -> dict[str, Any]:
    """Parse the comment header of generated source into a dict.

    Returns ``{"kind": ..., "format_version": int, "fingerprint": ...,
    "rows": int, "cols": int, "terms": int, ...}``.  Raises
    ``ValueError`` for anything that does not carry a well-formed
    :data:`CODEGEN_KIND` header — the same strictness the ``.npz``
    readers apply to their JSON headers.
    """
    lines = source.splitlines()
    if not lines or lines[0].strip() != f"# {CODEGEN_KIND}":
        raise ValueError(f"not a {CODEGEN_KIND} module (missing kind header)")
    header: dict[str, Any] = {"kind": CODEGEN_KIND}
    for line in lines[1:]:
        if not line.startswith("# "):
            break
        for token in line[2:].split():
            key, sep, value = token.partition("=")
            if not sep:
                raise ValueError(f"malformed codegen header line: {line!r}")
            header[key] = int(value) if value.lstrip("-").isdigit() else value
    if "format_version" not in header or "fingerprint" not in header:
        raise ValueError("codegen header missing format_version/fingerprint")
    return header


def load_execute(source: str, fingerprint: str) -> Callable[[np.ndarray], np.ndarray]:
    """Validate generated source and return its ``execute`` callable.

    Refuses (``ValueError``) source whose kind, format version, or
    fingerprint does not match the kernel being served; only validated
    source is executed.  Does **not** touch the ``codegen`` stage
    counter — loading cached source is exactly the work the counter
    proves warm deploys avoid.
    """
    header = source_header(source)
    if header["format_version"] != CODEGEN_FORMAT_VERSION:
        raise ValueError(
            f"codegen format version {header['format_version']} is not "
            f"supported (expected {CODEGEN_FORMAT_VERSION})"
        )
    if header["fingerprint"] != fingerprint:
        raise ValueError(
            f"generated source fingerprint {header['fingerprint']!r} does not "
            f"match kernel fingerprint {fingerprint!r}"
        )
    namespace: dict[str, Any] = {}
    exec(compile(source, f"<{CODEGEN_KIND}:{fingerprint[:12]}>", "exec"), namespace)
    execute = namespace.get("execute")
    if not callable(execute):
        raise ValueError("generated source defines no execute(batch) callable")
    return execute
