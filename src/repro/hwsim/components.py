"""Primitive components of the bit-serial datapath.

Every component output in this architecture is *registered* (the serial
adder's sum flop, the carry flop, plain DFFs, shift-register taps), which
is what gives the design its one-LUT-between-flops critical path ("All the
paths within these designs have at most one LUT between flops").  The
simulator exploits this: each cycle, every component computes its next
output from the *current* outputs of its inputs, then all outputs commit
simultaneously.  No combinational ordering is ever needed.

Component protocol:

* ``out`` — current registered output bit (0/1);
* ``compute(cycle)`` — latch the next output from input ``out`` values;
* ``commit()`` — make the next output current;
* ``reset()`` — restore power-on state.
"""

from __future__ import annotations

__all__ = [
    "Component",
    "ConstantZero",
    "InputStream",
    "DFF",
    "SerialAdder",
    "SerialSubtractor",
    "SerialNegator",
]


class Component:
    """Base class for all bit-serial primitives."""

    __slots__ = ("out", "_next", "name")

    def __init__(self, name: str = "") -> None:
        self.out = 0
        self._next = 0
        self.name = name

    def compute(self, cycle: int) -> None:
        raise NotImplementedError

    def commit(self) -> None:
        self.out = self._next

    def reset(self) -> None:
        self.out = 0
        self._next = 0


class ConstantZero(Component):
    """A tied-off zero input (culled subtree)."""

    __slots__ = ()

    def compute(self, cycle: int) -> None:
        self._next = 0


class InputStream(Component):
    """Input shift register presenting one bit per cycle, LSb first.

    The loaded value is streamed for ``width`` cycles and then
    sign-extended indefinitely ("we sign extend the input a from the shift
    register until the computation has finished").  ``load`` accepts a
    whole batch of values; vector ``k`` occupies cycles
    ``k*interval .. k*interval + interval - 1``.
    """

    __slots__ = ("width", "_bits", "_interval")

    def __init__(self, width: int, name: str = "") -> None:
        super().__init__(name)
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.width = width
        self._bits: list[int] = []
        self._interval = 0

    def load(self, values: list[int], interval: int) -> None:
        """Schedule a batch of signed values, ``interval`` cycles apart."""
        from repro.core.bits import sign_extended_stream

        if interval < self.width:
            raise ValueError(
                f"interval {interval} shorter than input width {self.width}"
            )
        self._interval = interval
        self._bits = []
        for value in values:
            self._bits.extend(sign_extended_stream(value, self.width, interval))

    def compute(self, cycle: int) -> None:
        if cycle < len(self._bits):
            self._next = self._bits[cycle]
        elif self._bits:
            # Hold the final sign bit for any trailing drain cycles.
            self._next = self._bits[-1]
        else:
            self._next = 0

    def reset(self) -> None:
        super().reset()


class DFF(Component):
    """Single D flip-flop — the culled serial adder."""

    __slots__ = ("d",)

    def __init__(self, d: Component, name: str = "") -> None:
        super().__init__(name)
        self.d = d

    def compute(self, cycle: int) -> None:
        self._next = self.d.out


class SerialAdder(Component):
    """Bit-serial adder (Fig. 1): full adder plus registered sum and carry."""

    __slots__ = ("a", "b", "carry", "_next_carry")

    def __init__(self, a: Component, b: Component, name: str = "") -> None:
        super().__init__(name)
        self.a = a
        self.b = b
        self.carry = 0
        self._next_carry = 0

    def compute(self, cycle: int) -> None:
        a = self.a.out
        b = self.b.out
        total = a + b + self.carry
        self._next = total & 1
        self._next_carry = total >> 1

    def commit(self) -> None:
        super().commit()
        self.carry = self._next_carry

    def reset(self) -> None:
        super().reset()
        self.carry = 0
        self._next_carry = 0


class SerialSubtractor(Component):
    """Bit-serial subtractor computing ``a - b``.

    Initializing the carry to 1 and inverting ``b`` adds the two's
    complement of ``b`` (Sec. III-A).
    """

    __slots__ = ("a", "b", "carry", "_next_carry")

    def __init__(self, a: Component, b: Component, name: str = "") -> None:
        super().__init__(name)
        self.a = a
        self.b = b
        self.carry = 1
        self._next_carry = 1

    def compute(self, cycle: int) -> None:
        a = self.a.out
        b = 1 - self.b.out
        total = a + b + self.carry
        self._next = total & 1
        self._next_carry = total >> 1

    def commit(self) -> None:
        super().commit()
        self.carry = self._next_carry

    def reset(self) -> None:
        super().reset()
        self.carry = 1
        self._next_carry = 1


class SerialNegator(Component):
    """Bit-serial negation ``-b`` — a subtractor with its ``a`` input culled."""

    __slots__ = ("b", "carry", "_next_carry")

    def __init__(self, b: Component, name: str = "") -> None:
        super().__init__(name)
        self.b = b
        self.carry = 1
        self._next_carry = 1

    def compute(self, cycle: int) -> None:
        total = (1 - self.b.out) + self.carry
        self._next = total & 1
        self._next_carry = total >> 1

    def commit(self) -> None:
        super().commit()
        self.carry = self._next_carry

    def reset(self) -> None:
        super().reset()
        self.carry = 1
        self._next_carry = 1
