"""Compile a :class:`~repro.core.plan.MatrixPlan` into a gate netlist.

Structure built (Sec. III of the paper, Figs. 2-4):

* one :class:`InputStream` per matrix row, broadcast to all columns;
* per plane (P, N), per column, per weight-bit position: a reduction tree
  over the live taps (a leaf is "tapped" where the weight bit is 1; the
  culled AND gate connects the input directly).  Tree nodes follow the
  culling rule — two live children: serial adder; one: D flip-flop; none:
  absent.  Style ``"padded"`` spans all rows; style ``"compact"`` reduces
  only the live taps and pads the root to the column's reference depth
  (see :mod:`repro.core.plan` for why both exist);
* per plane, per column: the bit-combination chain from MSb to LSb (same
  adder/DFF/absent rule).  The chain's registers provide the power-of-two
  weighting, including across missing bit positions;
* per column: the final ``P - N`` serial subtractor (DFF when N is empty,
  serial negator when P is empty, constant zero when both are), then DFF
  padding up to the global reference depth so every column shares one
  output schedule;
* per column: an output probe standing in for the output shift register.

Decode: result bit ``k`` of every column appears on its probe at cycle
``reference_depth + 2 + k`` ("a single cycle to accumulate across bit
positions and an additional cycle to subtract").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bits import decode_twos_complement_stream, signed_range
from repro.core.plan import MatrixPlan
from repro.core.stages import STAGES
from repro.hwsim.components import (
    Component,
    ConstantZero,
    DFF,
    InputStream,
    SerialAdder,
    SerialNegator,
    SerialSubtractor,
)
from repro.hwsim.netlist import Netlist, Probe

__all__ = ["CompiledCircuit", "build_circuit"]


@dataclass
class CompiledCircuit:
    """A compiled fixed-matrix multiplier ready for cycle simulation."""

    plan: MatrixPlan
    netlist: Netlist
    column_probes: list[Probe]
    decode_delta: int

    @property
    def digest(self) -> str:
        """Stable content fingerprint of the compiled plan.

        Two circuits with equal digests were built from identical plans
        and therefore have identical structure and behaviour; the serve
        layer's compile cache (:mod:`repro.serve.cache`) relies on this.
        """
        return self.plan.fingerprint()

    @property
    def run_cycles(self) -> int:
        """Cycles needed to produce and capture a full result.

        At least ``input_width`` cycles are always run so the input shift
        registers can stream their full value (relevant only for degenerate
        matrices whose serial result is shorter than the input).
        """
        return max(self.decode_delta + self.plan.result_width, self.plan.input_width)

    def multiply(self, vector: np.ndarray | list[int]) -> np.ndarray:
        """Cycle-accurately multiply ``a^T V`` for one input vector."""
        values = [int(v) for v in np.asarray(vector).ravel()]
        if len(values) != self.plan.rows:
            raise ValueError(
                f"vector length {len(values)} != matrix rows {self.plan.rows}"
            )
        lo, hi = signed_range(self.plan.input_width)
        for v in values:
            if not lo <= v <= hi:
                raise ValueError(
                    f"input {v} does not fit in s{self.plan.input_width}"
                )
        self.netlist.reset()
        self.netlist.load_vector(values, self.run_cycles)
        self.netlist.run(self.run_cycles)
        return self._decode()

    def multiply_batch(self, vectors: np.ndarray) -> np.ndarray:
        """Sequential vector products, as the paper's SRAM wrapper performs."""
        matrix = np.atleast_2d(np.asarray(vectors))
        return np.stack([self.multiply(row) for row in matrix])

    def _decode(self) -> np.ndarray:
        width = self.plan.result_width
        # Results wider than int64 decode into Python integers exactly.
        dtype = np.int64 if width <= 62 else object
        out = np.zeros(self.plan.cols, dtype=dtype)
        for j, probe in enumerate(self.column_probes):
            stream = probe.stream[self.decode_delta : self.decode_delta + width]
            out[j] = decode_twos_complement_stream(stream, width)
        return out


def _reduce_level(
    netlist: Netlist,
    level: list[Component | None],
    lvl: int,
    tag: str,
) -> list[Component | None]:
    """One tree level under the culling rule (adder/DFF/absent)."""
    if len(level) % 2:
        level = level + [None]
    merged: list[Component | None] = []
    for i in range(0, len(level), 2):
        a, b = level[i], level[i + 1]
        if a is not None and b is not None:
            merged.append(
                netlist.add(SerialAdder(a, b, f"{tag}.l{lvl}n{i // 2}"), depth=lvl)
            )
        elif a is not None or b is not None:
            live = a if a is not None else b
            merged.append(netlist.add(DFF(live, f"{tag}.l{lvl}n{i // 2}"), depth=lvl))
        else:
            merged.append(None)
    return merged


def _build_padded_tree(
    netlist: Netlist,
    plan: MatrixPlan,
    inputs: list[Component],
    taps: set[int],
    tag: str,
) -> Component | None:
    """Paper-literal tree over all row slots; root at ``full_depth``."""
    level: list[Component | None] = [
        inputs[row] if row in taps else None for row in range(plan.rows)
    ]
    for lvl in range(1, plan.full_depth + 1):
        level = _reduce_level(netlist, level, lvl, tag)
    if len(level) != 1:
        raise AssertionError(f"tree for {tag} did not reduce to a root")
    return level[0]


def _build_compact_tree(
    netlist: Netlist,
    inputs: list[Component],
    taps: list[int],
    column_depth: int,
    tag: str,
) -> Component | None:
    """Compact tree over live taps, root padded to ``column_depth``."""
    if not taps:
        return None
    level: list[Component | None] = [inputs[row] for row in taps]
    lvl = 0
    while len(level) > 1:
        lvl += 1
        level = _reduce_level(netlist, level, lvl, tag)
    root = level[0]
    assert root is not None
    for pad in range(lvl, column_depth):
        root = netlist.add(DFF(root, f"{tag}.pad{pad}"), depth=pad + 1)
    return root


def _build_plane_column(
    netlist: Netlist,
    plan: MatrixPlan,
    plane: np.ndarray,
    inputs: list[Component],
    col: int,
    column_depth: int,
    tag: str,
) -> Component | None:
    """Trees plus bit-combination chain for one column of one plane."""
    width = plan.plane_width
    roots: list[Component | None] = []
    for bit in range(width):
        taps = plan.column_taps(plane, col, bit).tolist()
        bit_tag = f"{tag}.c{col}.b{bit}"
        if plan.tree_style == "padded":
            root = (
                _build_padded_tree(netlist, plan, inputs, set(taps), bit_tag)
                if taps
                else None
            )
        else:
            root = _build_compact_tree(netlist, inputs, taps, column_depth, bit_tag)
        roots.append(root)
    chain: Component | None = None
    chain_depth = column_depth + 1
    for bit in reversed(range(width)):
        root = roots[bit]
        if chain is not None and root is not None:
            chain = netlist.add(
                SerialAdder(chain, root, f"{tag}.c{col}.chain{bit}"), depth=chain_depth
            )
        elif chain is not None or root is not None:
            live = chain if chain is not None else root
            chain = netlist.add(
                DFF(live, f"{tag}.c{col}.chain{bit}"), depth=chain_depth
            )
    return chain


def build_circuit(plan: MatrixPlan) -> CompiledCircuit:
    """Instantiate the full vector-matrix multiplier for a plan."""
    STAGES.increment("build")
    netlist = Netlist()
    inputs: list[Component] = [
        netlist.add(InputStream(plan.input_width, f"in{r}"), depth=0)
        for r in range(plan.rows)
    ]
    probes: list[Probe] = []
    column_depths = plan.column_depths()
    reference_depth = int(column_depths.max()) if column_depths.size else 0
    for col in range(plan.cols):
        column_depth = int(column_depths[col])
        subtract_depth = column_depth + 2
        p_chain = _build_plane_column(
            netlist, plan, plan.split.positive, inputs, col, column_depth, "P"
        )
        n_chain = _build_plane_column(
            netlist, plan, plan.split.negative, inputs, col, column_depth, "N"
        )
        if p_chain is not None and n_chain is not None:
            final: Component = netlist.add(
                SerialSubtractor(p_chain, n_chain, f"sub.c{col}"), depth=subtract_depth
            )
        elif p_chain is not None:
            final = netlist.add(DFF(p_chain, f"sub.c{col}"), depth=subtract_depth)
        elif n_chain is not None:
            final = netlist.add(
                SerialNegator(n_chain, f"sub.c{col}"), depth=subtract_depth
            )
        else:
            final = netlist.add(ConstantZero(f"sub.c{col}"), depth=subtract_depth)
        if not isinstance(final, ConstantZero):
            for pad in range(column_depth, reference_depth):
                final = netlist.add(
                    DFF(final, f"outpad.c{col}.{pad}"), depth=pad + 3
                )
        probes.append(netlist.probe(final, f"out{col}"))
    return CompiledCircuit(
        plan=plan,
        netlist=netlist,
        column_probes=probes,
        decode_delta=reference_depth + 2,
    )
