"""Fault injection for gate-level verification campaigns.

A verification flow is only as good as its ability to *catch* broken
hardware.  This module injects classic structural faults into a compiled
netlist — stuck-at-0/1 outputs, stuck carry bits — so the test suite can
demonstrate that the bit-exact cross-checks actually detect defects, and
so users can run coverage-style campaigns over their own compiled
matrices (how many injected faults does a given stimulus set expose?).

Faults are first-class in the simulation engine
(:meth:`repro.hwsim.netlist.Netlist.add_fault`); the helpers here provide
reversible handles and a whole-netlist campaign driver.  Campaigns can
run on any of the three simulation engines — the vectorized/bit-plane
engines replay the injected faults bit-exactly while evaluating the
whole stimulus batch in one pass per fault, which is what makes
whole-netlist campaigns on non-trivial matrices practical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hwsim.builder import CompiledCircuit
from repro.hwsim.fast import ALL_ENGINES as _ENGINES, FastCircuit
from repro.hwsim.components import (
    Component,
    ConstantZero,
    InputStream,
    SerialAdder,
    SerialNegator,
    SerialSubtractor,
)
from repro.hwsim.netlist import Netlist

__all__ = ["FaultInjection", "inject_stuck_output", "inject_stuck_carry", "fault_campaign"]


@dataclass
class FaultInjection:
    """A reversible fault handle on one component."""

    netlist: Netlist
    component: Component
    kind: str
    value: int

    def revert(self) -> None:
        """Remove the fault, restoring fault-free behaviour."""
        self.netlist.remove_fault(self.component)


def inject_stuck_output(
    netlist: Netlist, component: Component, value: int
) -> FaultInjection:
    """Force a component's output to a constant (stuck-at fault)."""
    netlist.add_fault(component, "stuck_output", value)
    return FaultInjection(netlist, component, "stuck_output", value)


def inject_stuck_carry(
    netlist: Netlist, component: Component, value: int
) -> FaultInjection:
    """Force a serial adder/subtractor/negator's carry to a constant."""
    if not isinstance(component, (SerialAdder, SerialSubtractor, SerialNegator)):
        raise TypeError(
            f"carry faults need a carry-bearing primitive, got "
            f"{type(component).__name__}"
        )
    netlist.add_fault(component, "stuck_carry", value)
    return FaultInjection(netlist, component, "stuck_carry", value)


def fault_campaign(
    circuit: CompiledCircuit,
    vectors: np.ndarray,
    max_faults: int | None = None,
    rng: np.random.Generator | None = None,
    engine: str = "bitplane",
    service=None,
    shards: int | None = None,
    keep_deployment: bool = False,
) -> dict:
    """Stuck-at-output campaign: what fraction of faults do vectors expose?

    Each arithmetic/storage component (inputs and tied-off constants
    excluded) gets a stuck-at-1 output fault in turn; the circuit is run
    over all ``vectors`` and the fault counts as *detected* if any output
    differs from the fault-free golden result.

    ``engine`` picks the simulation engine per fault evaluation:
    ``"object"`` replays each vector through the object graph (the seed
    behaviour), while ``"scalar"``/``"batched"``/``"bitplane"`` use
    :class:`~repro.hwsim.fast.FastCircuit`, which honours the injected
    faults and — with the default ``"bitplane"`` — evaluates the whole
    stimulus batch in one packed cycle loop per fault.  All engines are
    bit-exact, so the report is identical; only the wall clock differs.

    With ``service`` (a :class:`repro.serve.MatMulService`), the campaign
    is routed through the serving stack instead of driving the circuit
    directly: the plan's matrix is deployed (optionally column-sharded
    via ``shards``), faults are injected per shard, and every evaluation
    is a ``service.multiply`` call — so reliability sweeps share the
    shard executor, compile cache, and telemetry with production
    traffic.  The sweep covers the *deployment's* circuit, which the
    service compiles deterministically from the matrix (as all serve
    deploys are): functionally identical to ``circuit``, and
    structurally identical unless ``circuit`` was planned with a custom
    ``rng`` (seeded CSD coin flips) or is measured against a sharded
    deployment — in those cases per-gate counts can differ from the
    direct path even though both campaigns are exact for the structure
    they measure.  That is the intended semantics: a served sweep
    reports on what would actually be deployed.  The direct path (``service=None``) remains the default and
    the fallback.  Served reports carry extra ``served``/``deployment``/
    ``shards``/``telemetry`` keys; ``injected``/``detected``/``coverage``
    mean the same thing in both modes.  The campaign's private deployment
    is retired (``service.undeploy``) before returning — its final
    telemetry snapshot lives in the report — unless ``keep_deployment``
    is set, so repeated sweeps against a long-lived service do not
    accumulate executors.

    Returns a dict with ``injected``, ``detected`` and ``coverage``.
    """
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
    if engine == "fused":
        raise ValueError(
            "engine='fused' executes the static shift-add schedule and cannot "
            "replay injected faults; campaigns run on the gate-level engines "
            "('object', 'scalar', 'batched', 'bitplane')"
        )
    vectors = np.atleast_2d(np.asarray(vectors, dtype=np.int64))
    if service is not None:
        if engine == "object":
            raise ValueError(
                "the served campaign path executes through the shard engines; "
                "use the direct path (service=None) for engine='object'"
            )
        return _served_campaign(
            circuit, vectors, max_faults, rng, engine, service, shards,
            keep_deployment,
        )
    if engine == "object":
        golden_rows = [circuit.multiply(v) for v in vectors]

        def fault_exposed() -> bool:
            # Short-circuit on the first exposing vector: the object
            # engine is slow enough that this matters.
            return any(
                not np.array_equal(circuit.multiply(v), g)
                for v, g in zip(vectors, golden_rows)
            )
    else:
        fast = FastCircuit.from_compiled(circuit)
        golden = fast.multiply_batch(vectors, engine=engine)

        def fault_exposed() -> bool:
            return not np.array_equal(
                fast.multiply_batch(vectors, engine=engine), golden
            )
    candidates = [
        (circuit.netlist, c)
        for c in circuit.netlist.components
        if not isinstance(c, (InputStream, ConstantZero))
    ]
    return _run_campaign(candidates, fault_exposed, max_faults, rng)


def _sample_candidates(
    candidates: list, max_faults: int | None, rng: np.random.Generator | None
) -> list:
    if max_faults is not None and max_faults < len(candidates):
        rng = rng or np.random.default_rng(0)
        picks = rng.choice(len(candidates), size=max_faults, replace=False)
        candidates = [candidates[i] for i in sorted(picks)]
    return candidates


def _run_campaign(
    candidates: list,
    fault_exposed,
    max_faults: int | None,
    rng: np.random.Generator | None,
) -> dict:
    """Shared inject/evaluate/revert loop over (netlist, component) pairs."""
    candidates = _sample_candidates(candidates, max_faults, rng)
    detected = 0
    for netlist, component in candidates:
        injection = inject_stuck_output(netlist, component, 1)
        try:
            exposed = fault_exposed()
        finally:
            injection.revert()
        if exposed:
            detected += 1
    injected = len(candidates)
    return {
        "injected": injected,
        "detected": detected,
        "coverage": detected / injected if injected else 1.0,
    }


def _served_campaign(
    circuit: CompiledCircuit,
    vectors: np.ndarray,
    max_faults: int | None,
    rng: np.random.Generator | None,
    engine: str,
    service,
    shards: int | None,
    keep_deployment: bool,
) -> dict:
    """Campaign through the serving stack (see :func:`fault_campaign`).

    The deployment compiles its shards fresh (bypassing the service's
    shared compile cache) for two reasons: campaign fault injections must
    not leak into cached ``FastCircuit`` instances other traffic shares,
    and injection needs live netlists, which kernel-cache hits
    deliberately do not carry.
    """
    from repro.serve.service import MatMulService

    if not isinstance(service, MatMulService):
        raise TypeError(
            f"service must be a MatMulService, got {type(service).__name__}"
        )
    plan = circuit.plan
    handle = service.deploy(
        plan.matrix(),
        input_width=plan.input_width,
        scheme=plan.split.scheme,
        tree_style=plan.tree_style,
        shards=shards,
        use_cache=False,
    )
    try:
        sharded = handle.sharded
        golden = service.multiply(handle, vectors, engine=engine)

        def fault_exposed() -> bool:
            return not np.array_equal(
                service.multiply(handle, vectors, engine=engine), golden
            )

        candidates = [
            (shard.circuit.netlist, c)
            for shard in sharded.shards
            for c in shard.circuit.netlist.components
            if not isinstance(c, (InputStream, ConstantZero))
        ]
        report = _run_campaign(candidates, fault_exposed, max_faults, rng)
        report.update(
            served=True,
            deployment=handle.name,
            shards=sharded.shard_count,
            engine=engine,
            telemetry=service.telemetry(handle),
        )
    finally:
        if not keep_deployment:
            service.undeploy(handle)
    return report
