"""Fault injection for gate-level verification campaigns.

A verification flow is only as good as its ability to *catch* broken
hardware.  This module injects classic structural faults into a compiled
netlist — stuck-at-0/1 outputs, stuck carry bits — so the test suite can
demonstrate that the bit-exact cross-checks actually detect defects, and
so users can run coverage-style campaigns over their own compiled
matrices (how many injected faults does a given stimulus set expose?).

Faults are first-class in the simulation engine
(:meth:`repro.hwsim.netlist.Netlist.add_fault`); the helpers here provide
reversible handles and a whole-netlist campaign driver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hwsim.builder import CompiledCircuit
from repro.hwsim.components import (
    Component,
    ConstantZero,
    InputStream,
    SerialAdder,
    SerialNegator,
    SerialSubtractor,
)
from repro.hwsim.netlist import Netlist

__all__ = ["FaultInjection", "inject_stuck_output", "inject_stuck_carry", "fault_campaign"]


@dataclass
class FaultInjection:
    """A reversible fault handle on one component."""

    netlist: Netlist
    component: Component
    kind: str
    value: int

    def revert(self) -> None:
        """Remove the fault, restoring fault-free behaviour."""
        self.netlist.remove_fault(self.component)


def inject_stuck_output(
    netlist: Netlist, component: Component, value: int
) -> FaultInjection:
    """Force a component's output to a constant (stuck-at fault)."""
    netlist.add_fault(component, "stuck_output", value)
    return FaultInjection(netlist, component, "stuck_output", value)


def inject_stuck_carry(
    netlist: Netlist, component: Component, value: int
) -> FaultInjection:
    """Force a serial adder/subtractor/negator's carry to a constant."""
    if not isinstance(component, (SerialAdder, SerialSubtractor, SerialNegator)):
        raise TypeError(
            f"carry faults need a carry-bearing primitive, got "
            f"{type(component).__name__}"
        )
    netlist.add_fault(component, "stuck_carry", value)
    return FaultInjection(netlist, component, "stuck_carry", value)


def fault_campaign(
    circuit: CompiledCircuit,
    vectors: np.ndarray,
    max_faults: int | None = None,
    rng: np.random.Generator | None = None,
) -> dict:
    """Stuck-at-output campaign: what fraction of faults do vectors expose?

    Each arithmetic/storage component (inputs and tied-off constants
    excluded) gets a stuck-at-1 output fault in turn; the circuit is run
    over all ``vectors`` and the fault counts as *detected* if any output
    differs from the fault-free golden result.

    Returns a dict with ``injected``, ``detected`` and ``coverage``.
    """
    vectors = np.atleast_2d(np.asarray(vectors, dtype=np.int64))
    golden = [circuit.multiply(v) for v in vectors]
    candidates = [
        c
        for c in circuit.netlist.components
        if not isinstance(c, (InputStream, ConstantZero))
    ]
    if max_faults is not None and max_faults < len(candidates):
        rng = rng or np.random.default_rng(0)
        picks = rng.choice(len(candidates), size=max_faults, replace=False)
        candidates = [candidates[i] for i in sorted(picks)]
    detected = 0
    for component in candidates:
        injection = inject_stuck_output(circuit.netlist, component, 1)
        try:
            exposed = any(
                not np.array_equal(circuit.multiply(v), g)
                for v, g in zip(vectors, golden)
            )
        finally:
            injection.revert()
        if exposed:
            detected += 1
    injected = len(candidates)
    return {
        "injected": injected,
        "detected": detected,
        "coverage": detected / injected if injected else 1.0,
    }
