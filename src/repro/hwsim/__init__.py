"""Gate-level bit-serial hardware simulation substrate."""

from repro.hwsim.builder import CompiledCircuit, build_circuit
from repro.hwsim.fast import (
    FastCircuit,
    LoweredKernel,
    lower,
    pack_lanes,
    unpack_lanes,
)
from repro.hwsim.fused import FusedCircuit, FusedKernel, fuse
from repro.hwsim.faults import (
    FaultInjection,
    fault_campaign,
    inject_stuck_carry,
    inject_stuck_output,
)
from repro.hwsim.vcd import dump_vcd
from repro.hwsim.wrapper import SramWrapper, WrapperRun
from repro.hwsim.components import (
    Component,
    ConstantZero,
    DFF,
    InputStream,
    SerialAdder,
    SerialNegator,
    SerialSubtractor,
)
from repro.hwsim.netlist import Netlist, Probe

__all__ = [
    "CompiledCircuit",
    "build_circuit",
    "FastCircuit",
    "LoweredKernel",
    "lower",
    "FusedCircuit",
    "FusedKernel",
    "fuse",
    "pack_lanes",
    "unpack_lanes",
    "SramWrapper",
    "WrapperRun",
    "FaultInjection",
    "fault_campaign",
    "inject_stuck_output",
    "inject_stuck_carry",
    "dump_vcd",
    "Netlist",
    "Probe",
    "Component",
    "ConstantZero",
    "InputStream",
    "DFF",
    "SerialAdder",
    "SerialSubtractor",
    "SerialNegator",
]
