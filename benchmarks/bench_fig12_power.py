"""Fig. 12: large-scale power at the maximum achievable frequency.

Paper shape: "Note the sublinear increase due to the decreasing achievable
frequency.  Under medium cooling assumptions, this FPGA has a limit of
about 150W" — approached at high dimension and low sparsity.
"""

from conftest import run_once

from repro.bench.experiments import fig12_power
from repro.bench.shapes import linear_fit_r_squared


def test_fig12_power(benchmark, record_result):
    result = record_result(run_once(benchmark, fig12_power))
    rows = [r for r in result.rows if r["fits"]]
    # Every design respects the ~150 W thermal envelope (small margin).
    for row in rows:
        assert row["power_w"] <= 155.0, row
    # The largest design approaches the limit.
    largest = max(rows, key=lambda r: r["ones"])
    assert largest["power_w"] > 130.0
    # Sublinear in ones: power per one *decreases* as designs grow
    # (the clock slows down), so a linear fit through the origin overshoots
    # at the low end. Check the ratio falls from small to large designs.
    small = min(rows, key=lambda r: r["ones"])
    assert small["power_w"] / small["ones"] > largest["power_w"] / largest["ones"]
