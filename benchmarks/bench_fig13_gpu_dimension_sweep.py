"""Figs. 13-14: GPU latency and speedup vs matrix dimension (98% sparse).

Paper shape: "in all cases, our FPGA latency is less than 120ns, whereas
the GPU cannot break the 1 us barrier. [...] we see our speedup fall from
86x to 60x [in the latency-bound regime ...] we see our speedup leveling
off at 50x due to the slower clock."
"""

from conftest import run_once

from repro.bench.experiments import fig13_14_gpu_dimension
from repro.bench.shapes import all_within_band, within_band


def test_fig13_14_gpu_dimension(benchmark, record_result):
    result = record_result(run_once(benchmark, fig13_14_gpu_dimension))
    # FPGA stays in the nanosecond regime; both GPU kernels above 1 us.
    assert all_within_band(result.column("fpga_ns"), 0, 150)
    assert all(ns > 1000 for ns in result.column("cusparse_ns"))
    assert all(ns > 1000 for ns in result.column("optimized_ns"))
    # Speedup vs the stronger baseline stays in the paper's ~50-90x band.
    for row in result.rows:
        assert within_band(row["speedup_optimized"], 40, 120), row
    # cuSPARSE (weaker baseline) grows with dimension once utilized.
    by_dim = {row["dim"]: row for row in result.rows}
    assert by_dim[4096]["speedup_cusparse"] > by_dim[256]["speedup_cusparse"]
    # Latency-bound regime: GPU latency ~flat below 512.
    assert by_dim[256]["optimized_ns"] < by_dim[64]["optimized_ns"] * 1.25
    # Eq. 5's worked example is visible in the FPGA column: 1024 runs in
    # 28 cycles, i.e. tens of nanoseconds.
    assert by_dim[1024]["fpga_ns"] < 120
