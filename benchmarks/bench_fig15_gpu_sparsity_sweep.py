"""Figs. 15-16: GPU latency and speedup vs element sparsity (1024x1024).

Paper shape: "increasing sparsity from 70% to 85% sees large reductions in
latency [...] As sparsity increases further, the GPU again becomes
underutilized and both the latency and speedup level off [...] the GPU is
unable to break the 1 us barrier, whereas our solution stays under 120ns."
"""

from conftest import run_once

from repro.bench.experiments import fig15_16_gpu_sparsity
from repro.bench.shapes import all_within_band, is_monotone_decreasing


def test_fig15_16_gpu_sparsity(benchmark, record_result):
    result = record_result(run_once(benchmark, fig15_16_gpu_sparsity))
    assert all_within_band(result.column("fpga_ns"), 0, 150)
    # GPU latency falls monotonically with sparsity but never below 1 us.
    assert is_monotone_decreasing(result.column("cusparse_ns"))
    assert is_monotone_decreasing(result.column("optimized_ns"))
    assert all(ns > 1000 for ns in result.column("optimized_ns"))
    # cuSPARSE's 70% -> 85% drop is large ("large reductions in latency").
    by_sparsity = {row["element_sparsity_pct"]: row for row in result.rows}
    assert (
        by_sparsity[70]["cusparse_ns"] / by_sparsity[85]["cusparse_ns"] > 1.5
    )
    # Speedup vs the stronger baseline: decreasing trend, paper band.
    speedups = result.column("speedup_optimized")
    assert speedups[0] > speedups[-1]
    assert all_within_band(speedups, 50, 120)
