"""Measured CPU sparse-gemv reference (scipy CSR).

Unlike the modelled GPU/SIGMA baselines, this one is *measured* on the
machine running the suite: pytest-benchmark times scipy's CSR gemv over
many rounds.  It grounds the comparison table with at least one real
number and sanity-checks the modelled regimes: even a real CPU cannot
approach the modelled FPGA's nanoseconds, and CPU latency grows with
nonzeros exactly as the work-term models assume.
"""

import numpy as np
import pytest

from repro.baselines.reference import csr_gemv, to_csr
from repro.bench.fpga_point import evaluation_design_point
from repro.workloads.matrices import element_sparse_matrix


@pytest.mark.parametrize("dim", [256, 1024])
def test_cpu_csr_gemv_measured(benchmark, dim):
    rng = np.random.default_rng(dim)
    matrix = element_sparse_matrix(dim, dim, 8, 0.98, rng, signed=True)
    csr = to_csr(matrix)
    vector = rng.integers(-128, 128, size=dim)
    golden = vector @ matrix

    result = benchmark(lambda: csr_gemv(csr, vector))
    assert np.array_equal(result, golden)

    measured_s = benchmark.stats.stats.mean
    point = evaluation_design_point(dim, 0.98, "csd")
    speedup = measured_s / point.latency_s
    print(
        f"\ndim {dim}: measured CPU CSR gemv {measured_s * 1e6:.2f} us vs "
        f"modelled FPGA {point.latency_ns:.0f} ns -> {speedup:.0f}x"
    )
    # A real CPU sparse gemv sits far above the spatial design's
    # nanoseconds — the same regime statement the paper makes for GPUs.
    assert speedup > 10
