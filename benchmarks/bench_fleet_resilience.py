"""Fleet resilience drill: kill a shard host mid-stream, watch it rejoin.

A 48x48 matrix is served by three loopback
:class:`~repro.cluster.server.ShardServer` hosts (one column shard
each).  Offered load runs in waves of 24 concurrent single-vector
requests through the micro-batcher while the drill walks the full
outage arc:

1. **healthy** — every batch travels over sockets;
2. **outage** — one host is killed *while a wave is in flight*; its
   shard degrades to local fallback execution;
3. **revival** — the host is restarted on its original endpoint, and
   the shard links' jittered-backoff probes promote it back to remote
   serving with **no** ``revive()`` call and no fleet-map change.

Three contracts are asserted (the timings are recorded for the
curious):

* **zero failed requests** — every row of every wave, through kill and
  revival alike, equals ``vector @ matrix`` bit-exactly;
* **the fallback actually engaged** — the killed shard's
  ``local_fallbacks`` counter grew during the outage;
* **recovery is automatic** — the link reports ``healthy`` with
  ``auto_revivals >= 1`` within the revival deadline, and post-revival
  waves run with zero additional fallbacks.

Results are written to ``BENCH_fleet_resilience.json`` at the repo root.

Run::

    pytest benchmarks/bench_fleet_resilience.py
"""

import asyncio
import json
import pathlib
import time

import numpy as np

from repro.cluster import BackoffPolicy, ClusterController

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DIM = 48
SPARSITY = 0.5
SERVERS = 3
WAVE = 24
HEALTHY_WAVES = 2
DEGRADED_WAVES = 2
REVIVAL_DEADLINE_S = 15.0


def _matrix():
    rng = np.random.default_rng(31)
    matrix = rng.integers(-128, 128, size=(DIM, DIM))
    matrix[rng.random((DIM, DIM)) < SPARSITY] = 0
    return matrix


def test_fleet_resilience(tmp_path):
    matrix = _matrix()
    vectors = np.random.default_rng(37).integers(-128, 128, size=(WAVE, DIM))
    golden = vectors @ matrix
    requests = 0

    def _assert_wave(rows):
        nonlocal requests
        requests += WAVE
        assert np.array_equal(rows, golden)  # bit-exact, or the drill fails

    def _wave(service, handle):
        return asyncio.run(service.submit_many(handle, vectors))

    def _wave_with_kill(service, handle, controller):
        """Kill host 0 while this wave's requests are in flight."""

        async def drive():
            loop = asyncio.get_running_loop()
            task = asyncio.ensure_future(service.submit_many(handle, vectors))
            await asyncio.sleep(0.003)
            await loop.run_in_executor(None, controller.kill_server, 0)
            return await task

        return asyncio.run(drive())

    with ClusterController(tmp_path / "store") as controller:
        controller.start_local_fleet(SERVERS)
        backoff = BackoffPolicy(
            initial_s=0.05, multiplier=2.0, max_s=0.5, jitter=0.25
        )
        with controller.remote_service(
            probe_backoff=backoff, max_delay_s=0.001
        ) as service:
            handle = controller.deploy_fleet(service, matrix)
            shard0 = handle.sharded._remotes[0]

            for _ in range(HEALTHY_WAVES):
                _assert_wave(_wave(service, handle))
            assert shard0.local_fallbacks == 0

            # Outage: the kill lands mid-wave, yet the wave still
            # resolves bit-exactly (reconnect-retry, then local
            # fallback on the shard's in-process engine).
            outage_start = time.perf_counter()
            _assert_wave(_wave_with_kill(service, handle, controller))
            for _ in range(DEGRADED_WAVES):
                _assert_wave(_wave(service, handle))
            assert shard0.healthy is False
            fallbacks_during_outage = shard0.local_fallbacks
            assert fallbacks_during_outage > 0

            # Revival: same endpoint, no revive() — traffic doubles as
            # the probe once the backoff deadline passes.
            controller.restart_server(0)
            restart_at = time.perf_counter()
            revival_waves = 0
            while not shard0.healthy:
                if time.perf_counter() - restart_at > REVIVAL_DEADLINE_S:
                    raise AssertionError(
                        "shard 0 did not rejoin within "
                        f"{REVIVAL_DEADLINE_S}s: {shard0.telemetry()}"
                    )
                _assert_wave(_wave(service, handle))
                revival_waves += 1
                time.sleep(0.02)
            time_to_revival = time.perf_counter() - restart_at
            outage_s = time.perf_counter() - outage_start

            probe = shard0.probe_state
            assert probe.auto_revivals >= 1
            assert probe.consecutive_failures == 0

            # Post-revival: remote serving, zero further fallbacks.
            fallbacks_after = shard0.local_fallbacks
            remote_calls_before = shard0.remote_calls
            for _ in range(HEALTHY_WAVES):
                _assert_wave(_wave(service, handle))
            assert shard0.healthy is True
            assert shard0.local_fallbacks == fallbacks_after
            assert shard0.remote_calls > remote_calls_before

            util = handle.sharded.utilization()
            record = {
                "matrix": (
                    f"{DIM}x{DIM} csd, ~{SPARSITY:.0%} element sparsity, "
                    "s8 inputs"
                ),
                "servers": SERVERS,
                "wave_size": WAVE,
                "requests_total": requests,
                "requests_failed": 0,
                "bit_exact": True,
                "fallbacks_during_outage": fallbacks_during_outage,
                "fallbacks_after_revival": int(
                    shard0.local_fallbacks - fallbacks_after
                ),
                "revival": {
                    "automatic": True,
                    "waves_until_healthy": revival_waves,
                    "time_to_revival_s": round(time_to_revival, 4),
                    "outage_window_s": round(outage_s, 4),
                    "auto_revivals": probe.auto_revivals,
                    "probes": probe.probes,
                },
                "backoff": {
                    "initial_s": backoff.initial_s,
                    "multiplier": backoff.multiplier,
                    "max_s": backoff.max_s,
                    "jitter": backoff.jitter,
                },
                "per_shard": [
                    {
                        "endpoint": p["endpoint"],
                        "columns": p["columns"],
                        "healthy": p["healthy"],
                        "remote_calls": p["remote_calls"],
                        "local_fallbacks": p["local_fallbacks"],
                        "probe": p["probe"],
                    }
                    for p in util["per_shard"]
                ],
            }

    out_path = REPO_ROOT / "BENCH_fleet_resilience.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))
