"""Fig. 7: utilization vs matrix size for random 8-bit matrices.

Paper shape: "The cost is quadratic with respect to matrix dimension and
therefore linear with respect to the number of elements."
"""

from conftest import run_once

from repro.bench.experiments import fig07_matrix_size
from repro.bench.shapes import linear_fit_r_squared


def test_fig07_matrix_size(benchmark, record_result):
    result = record_result(run_once(benchmark, fig07_matrix_size))
    elements = result.column("elements")
    luts = result.column("lut")
    ffs = result.column("ff")
    assert linear_fit_r_squared(elements, luts) > 0.999
    assert linear_fit_r_squared(elements, ffs) > 0.999
    # Doubling the dimension roughly quadruples the cost at scale.
    big = result.rows[-1]
    prev = result.rows[-2]
    assert 3.3 < big["lut"] / prev["lut"] < 4.7
