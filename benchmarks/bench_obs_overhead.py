"""Observability overhead benchmark: the traced path must stay cheap.

The same offered load — 64 concurrent single-vector requests,
micro-batched by the service — is served against one loopback
3-server shard fleet over one prewarmed store by two deployments of
the same 384x384 matrix:

* **untraced** — ``tracer=None``/``recorder=None``, the default
  uninstrumented path (pays only ``None`` checks);
* **traced** — a :class:`~repro.obs.tracing.Tracer`, a
  :class:`~repro.obs.recorder.FlightRecorder`, and
  ``slow_request_s=0.0`` so *every* request also writes a
  ``slow_request`` exemplar — the most expensive instrumentation the
  stack offers.

Both deployments stay live on the same fleet and the measured waves
**interleave** (untraced, traced, untraced, traced, ...), taking the
best wave of each: a sequential A-then-B design confounds the
comparison with machine warm-up drift, which on loopback is the same
order of magnitude as the effect being measured.

Two contracts are asserted:

* **<10% overhead** — best traced wave is within ``OVERHEAD_CAP``
  (1.10x) of the best untraced wave, both bit-exact;
* **complete trees** — the traced run's carrier traces assemble into
  single-root span trees covering all six stages (request, queue_wait,
  coalesce, shard_dispatch, wire, server_execute), with every
  server-side span parented on a client wire span id — context
  propagated through the EXECUTE frame, not guessed from clocks.

Results are written to ``BENCH_obs_overhead.json`` at the repo root,
including the absolute per-request instrumentation cost (µs), which is
the number to watch — the ratio scales with how much work each
request carries.

Run::

    pytest benchmarks/bench_obs_overhead.py
"""

import asyncio
import json
import pathlib
import time

import numpy as np

from repro.cluster import ClusterController
from repro.obs import FlightRecorder, Tracer, span_tree, tree_stages
from repro.serve.prewarm import prewarm

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DIM = 384
SPARSITY = 0.5
SERVERS = 3
OFFERED = 64
WARMUP_WAVES = 3
MEASURE_ROUNDS = 12
OVERHEAD_CAP = 1.10

ALL_STAGES = {
    "request", "queue_wait", "coalesce", "shard_dispatch",
    "wire", "server_execute",
}


def _matrix():
    rng = np.random.default_rng(23)
    matrix = rng.integers(-128, 128, size=(DIM, DIM))
    matrix[rng.random((DIM, DIM)) < SPARSITY] = 0
    return matrix


def _wave(service, handle, vectors, golden):
    """One offered wave: 64 concurrent submits, bit-exact asserted."""

    async def drive():
        start = time.perf_counter()
        rows = await service.submit_many(handle, vectors)
        return rows, time.perf_counter() - start

    rows, elapsed = asyncio.run(drive())
    assert np.array_equal(rows, golden)
    return elapsed


def _assert_complete_trees(tracer):
    """Every carrier trace assembles into one six-stage tree with the
    server spans hanging off client wire spans.  Returns the count."""
    spans = tracer.spans()
    carriers = {s.trace_id for s in spans if s.stage == "coalesce"}
    assert carriers, "traced run produced no coalesce spans"
    for trace_id in carriers:
        trace = [s for s in spans if s.trace_id == trace_id]
        trees = span_tree(trace)
        assert len(trees) == 1, f"trace {trace_id} is not one connected tree"
        assert tree_stages(trees[0]) == ALL_STAGES
        wire_ids = {s.span_id for s in trace if s.stage == "wire"}
        servers = [s for s in trace if s.stage == "server_execute"]
        assert len(servers) == SERVERS
        assert {s.parent_id for s in servers} <= wire_ids
    return len(carriers)


def test_obs_overhead(tmp_path):
    matrix = _matrix()
    vectors = np.random.default_rng(29).integers(-128, 128, size=(OFFERED, DIM))
    golden = vectors @ matrix
    store = tmp_path / "store"
    prewarm(
        {
            "defaults": {"input_width": 8, "scheme": "csd"},
            "workloads": [
                {"name": "fleet", "matrix": matrix.tolist(), "shards": SERVERS}
            ],
        },
        store=store,
    )

    tracer = Tracer(capacity=65536)
    recorder = FlightRecorder()
    with ClusterController(store) as controller:
        controller.start_local_fleet(SERVERS)
        with controller.remote_service() as untraced_service, (
            controller.remote_service(
                tracer=tracer, recorder=recorder, slow_request_s=0.0
            )
        ) as traced_service:
            untraced_handle = controller.deploy_fleet(untraced_service, matrix)
            traced_handle = controller.deploy_fleet(traced_service, matrix)
            for _ in range(WARMUP_WAVES):
                _wave(untraced_service, untraced_handle, vectors, golden)
                _wave(traced_service, traced_handle, vectors, golden)
            untraced_s = traced_s = float("inf")
            pair = (
                (untraced_service, untraced_handle),
                (traced_service, traced_handle),
            )
            for round_i in range(MEASURE_ROUNDS):
                # Alternate which deployment goes first so cache/
                # scheduler warm-up from one wave never systematically
                # favors the other config.
                first, second = (
                    pair if round_i % 2 == 0 else (pair[1], pair[0])
                )
                for service, handle in (first, second):
                    elapsed = _wave(service, handle, vectors, golden)
                    if service is untraced_service:
                        untraced_s = min(untraced_s, elapsed)
                    else:
                        traced_s = min(traced_s, elapsed)

    overhead_x = traced_s / untraced_s
    assert overhead_x < OVERHEAD_CAP, (
        f"traced path costs {overhead_x:.3f}x untraced "
        f"(cap {OVERHEAD_CAP}x): traced {traced_s:.6f}s "
        f"vs untraced {untraced_s:.6f}s"
    )
    complete_trees = _assert_complete_trees(tracer)
    tracer_stats = tracer.stats()
    # One trace per request per traced wave (warm-up included), and
    # every request left a slow_request exemplar.
    traced_waves = WARMUP_WAVES + MEASURE_ROUNDS
    assert len(tracer.trace_ids()) == OFFERED * traced_waves
    assert len(recorder.events(kind="slow_request")) == OFFERED * traced_waves

    record = {
        "matrix": f"{DIM}x{DIM} csd, ~{SPARSITY:.0%} element sparsity, s8 inputs",
        "offered_batch": OFFERED,
        "servers": SERVERS,
        "interleaved_rounds_best_of": MEASURE_ROUNDS,
        "seconds": {
            "untraced": round(untraced_s, 6),
            "traced": round(traced_s, 6),
        },
        "requests_per_s": {
            "untraced": round(OFFERED / untraced_s, 1),
            "traced": round(OFFERED / traced_s, 1),
        },
        "overhead_x": round(overhead_x, 3),
        "overhead_cap_x": OVERHEAD_CAP,
        "overhead_us_per_request": round(
            (traced_s - untraced_s) / OFFERED * 1e6, 2
        ),
        "spans_recorded": tracer_stats["recorded"],
        "complete_six_stage_trees": complete_trees,
        "flight_recorder_events": recorder.stats()["recorded"],
        "bit_exact": True,
    }
    out_path = REPO_ROOT / "BENCH_obs_overhead.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))
