"""Measured fused-executor tiers across a matrix-size x sparsity sweep.

The executor tiers exist because the dense fold does O(rows * cols)
work per lane regardless of how empty the schedule is, while the
segmented and generated tiers do O(terms): the paper's thesis — cost
tracks nonzero terms, not matrix area — applied to the serving path's
own arithmetic.  This benchmark sweeps that trade-off, records the
whole curve to ``BENCH_fused_sparse.json`` at the repo root, and pins
the contract at both ends:

* **sparse regime**: on a >= 256-wide matrix at >= 90% element
  sparsity the selected sparse tier must clear **3x** the dense fold's
  products/s, bit-exact against the bit-plane gate oracle and a golden
  integer matmul;
* **dense regime**: the auto-selected executor must never regress the
  dense fold by more than 10% (it picks the fold itself, so this guards
  the selector, not numpy);
* **warm store**: a second :class:`~repro.serve.cache.CompileCache` on
  the same directory performs **zero** plan/build/lower/fuse/codegen
  stage executions — the generated source is a persisted artifact, not
  a recompute (proved against :data:`repro.core.stages.STAGES`).

Run::

    pytest benchmarks/bench_fused_sparse.py
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.core.stages import STAGES
from repro.hwsim.fused import FusedCircuit, select_variant
from repro.serve import CompileCache

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BATCH = 64
REQUIRED_SPARSE_SPEEDUP = 3.0
MAX_DENSE_REGRESSION = 0.9  # auto must keep >= 90% of the fold's rate

#: (label, size, element sparsity, weight magnitude).  Small weights at
#: the sparse points keep the NAF term count per nonzero low — the
#: regime the sparse tiers are built for; the dense point uses full
#: s8-range weights so the fold's O(area) matmul is at its best.
SWEEP = [
    ("dense-64", 64, 0.5, 100),
    ("sparse-256-p90", 256, 0.90, 8),
    ("sparse-256-p95", 256, 0.95, 8),
]
ASSERTED_POINT = "sparse-256-p95"  # >= 256 wide, >= 90% sparse


def _matrix(seed, size, sparsity, magnitude):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-magnitude, magnitude + 1, size=(size, size))
    matrix[rng.random((size, size)) < sparsity] = 0
    return matrix


def _best_of(fn, repeats):
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_fused_sparse_sweep(tmp_path):
    """Tier throughput across the sweep + the warm-store contract."""
    rows = []
    matrices = []
    cache = CompileCache(directory=tmp_path)
    for label, size, sparsity, magnitude in SWEEP:
        matrix = _matrix(len(label), size, sparsity, magnitude)
        matrices.append(matrix)
        entry = cache.get(matrix)
        fast, fused = entry.fast, entry.fast.fuse()
        selected = select_variant(
            fused.terms, fused.rows, fused.cols, fused.result_width
        )
        rng = np.random.default_rng(size)
        vectors = rng.integers(-128, 128, size=(BATCH, size))
        golden = vectors @ matrix
        # Oracle first: the gate-level bit-plane engine is bit-exact
        # with the golden matmul, and every tier must match both.
        assert np.array_equal(
            fast.multiply_batch(vectors, engine="bitplane"), golden
        )
        timings = {}
        for variant in FusedCircuit.VARIANTS:
            circuit = FusedCircuit(
                fused,
                variant=variant,
                source=fast.codegen_source if variant == "generated" else None,
            )
            assert np.array_equal(circuit.multiply_batch(vectors), golden), (
                label,
                variant,
            )
            timings[variant] = _best_of(
                lambda c=circuit: c.execute(vectors), repeats=20
            )
        rows.append(
            {
                "point": label,
                "shape": f"{size}x{size}",
                "element_sparsity": sparsity,
                "weight_magnitude": magnitude,
                "terms": int(fused.terms),
                "term_density": round(fused.terms / (size * size), 4),
                "selected_variant": selected,
                "seconds": {k: round(v, 6) for k, v in timings.items()},
                "products_per_second": {
                    k: round(BATCH / v, 1) for k, v in timings.items()
                },
                "selected_speedup_vs_dense": round(
                    timings["dense"] / timings[selected], 2
                ),
            }
        )

    # Warm store: a fresh cache re-serves every point from artifacts
    # alone — zero pipeline stages, generated source included.
    before = STAGES.snapshot()
    warm = CompileCache(directory=tmp_path)
    for matrix in matrices:
        warm.get(matrix)
    delta = STAGES.delta(before)
    for stage in ("plan", "build", "lower", "fuse", "codegen"):
        assert delta.get(stage, 0) == 0, (stage, delta)
    assert warm.kernel_hits == len(SWEEP)
    assert warm.fused_hits == len(SWEEP)
    generated_points = [r for r in rows if r["selected_variant"] == "generated"]
    assert warm.codegen_hits == len(generated_points) >= 1

    by_point = {r["point"]: r for r in rows}
    record = {
        "batch": BATCH,
        "tiers": {
            "dense": "terms folded to an int64 matrix, one matmul per batch",
            "segmented": "gather + scale + np.add.reduceat over term segments",
            "generated": "codegen'd module, fixed-width reshape-sum groups",
        },
        "sweep": rows,
        "asserted_point": ASSERTED_POINT,
        "required_sparse_speedup": REQUIRED_SPARSE_SPEEDUP,
        "max_dense_regression": MAX_DENSE_REGRESSION,
        "warm_store": {
            "stage_delta": {k: delta.get(k, 0) for k in
                            ("plan", "build", "lower", "fuse", "codegen")},
            "codegen_hits": warm.codegen_hits,
        },
    }
    (REPO_ROOT / "BENCH_fused_sparse.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    print()
    print(json.dumps(record, indent=2))

    # Sparse bar: the selected tier must make sparsity pay >= 3x.
    sparse = by_point[ASSERTED_POINT]
    assert sparse["element_sparsity"] >= 0.90
    assert sparse["selected_variant"] != "dense"
    assert sparse["selected_speedup_vs_dense"] >= REQUIRED_SPARSE_SPEEDUP, sparse
    # Dense bar: auto must not give back the fold's throughput.
    dense = by_point["dense-64"]
    assert dense["selected_variant"] == "dense"
    assert dense["selected_speedup_vs_dense"] >= MAX_DENSE_REGRESSION, dense
