"""Measured simulator throughput: object engine vs vectorized engine.

Real wall-clock numbers (pytest-benchmark, multiple rounds) for one
cycle-accurate product on a 64x64 CSD-recoded matrix — the evidence
behind shipping two simulation engines.
"""

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.hwsim.builder import build_circuit
from repro.hwsim.fast import FastCircuit


@pytest.fixture(scope="module")
def compiled():
    rng = np.random.default_rng(7)
    matrix = rng.integers(-128, 128, size=(64, 64))
    matrix[rng.random((64, 64)) < 0.5] = 0
    plan = plan_matrix(matrix, input_width=8, scheme="csd", rng=rng)
    circuit = build_circuit(plan)
    fast = FastCircuit.from_compiled(circuit)
    vector = rng.integers(-128, 128, size=64)
    golden = vector @ matrix
    return circuit, fast, vector, golden


def test_object_engine_product(benchmark, compiled):
    circuit, __, vector, golden = compiled
    result = benchmark(lambda: circuit.multiply(vector))
    assert np.array_equal(result, golden)


def test_vectorized_engine_product(benchmark, compiled):
    __, fast, vector, golden = compiled
    result = benchmark(lambda: fast.multiply(vector))
    assert np.array_equal(result, golden)
    # The vectorized engine should complete a 64x64 gate-accurate product
    # in single-digit milliseconds on any modern machine.
    assert benchmark.stats.stats.mean < 0.05
