"""Measured simulator throughput: object vs vectorized vs bit-plane.

Real wall-clock numbers for cycle-accurate products on a 64x64
CSD-recoded matrix — the evidence behind shipping three simulation
engines.  Two kinds of measurement:

* the original pytest-benchmark single-product comparison (object
  engine vs vectorized engine);
* a batched comparison at batch = 64 of the seed per-vector loop
  (``engine="scalar"``), the dense batch axis (``engine="batched"``)
  and the uint64 bit-plane packing (``engine="bitplane"``), whose
  results are written to ``BENCH_simulator_batched.json`` at the repo
  root.  The bit-plane engine must beat the per-vector loop by >= 10x —
  that is the asserted contract, not a hope.

Run the quick batched comparison alone with::

    pytest benchmarks/bench_simulator_throughput.py -k batched
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.hwsim.builder import build_circuit
from repro.hwsim.fast import FastCircuit

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BATCH = 64


@pytest.fixture(scope="module")
def compiled():
    rng = np.random.default_rng(7)
    matrix = rng.integers(-128, 128, size=(64, 64))
    matrix[rng.random((64, 64)) < 0.5] = 0
    plan = plan_matrix(matrix, input_width=8, scheme="csd", rng=rng)
    circuit = build_circuit(plan)
    fast = FastCircuit.from_compiled(circuit)
    vector = rng.integers(-128, 128, size=64)
    golden = vector @ matrix
    return circuit, fast, matrix, vector, golden


def test_object_engine_product(benchmark, compiled):
    circuit, __, __, vector, golden = compiled
    result = benchmark(lambda: circuit.multiply(vector))
    assert np.array_equal(result, golden)


def test_vectorized_engine_product(benchmark, compiled):
    __, fast, __, vector, golden = compiled
    result = benchmark(lambda: fast.multiply(vector))
    assert np.array_equal(result, golden)
    # The vectorized engine should complete a 64x64 gate-accurate product
    # in single-digit milliseconds on any modern machine.
    assert benchmark.stats.stats.mean < 0.05


def _best_of(fn, repeats=3):
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_engine_comparison(compiled):
    """Scalar loop vs dense batch vs bit-plane at batch=64, recorded to JSON."""
    __, fast, matrix, __, __ = compiled
    rng = np.random.default_rng(11)
    vectors = rng.integers(-128, 128, size=(BATCH, 64))
    golden = vectors @ matrix

    timings = {}
    for engine, repeats in (("scalar", 2), ("batched", 3), ("bitplane", 5)):
        result = fast.multiply_batch(vectors, engine=engine)  # warm + check
        assert np.array_equal(result, golden), engine
        timings[engine] = _best_of(
            lambda engine=engine: fast.multiply_batch(vectors, engine=engine),
            repeats=repeats,
        )

    speedup_batched = timings["scalar"] / timings["batched"]
    speedup_bitplane = timings["scalar"] / timings["bitplane"]
    record = {
        "matrix": "64x64 csd, ~50% element sparsity, s8 inputs",
        "batch": BATCH,
        "engines": (
            "gate-level engines scalar/batched/bitplane measured here; the "
            "fourth engine (fused, the cycle-loop-free shift-add schedule) "
            "is measured in BENCH_engine_fused.json"
        ),
        "seconds": {k: round(v, 6) for k, v in timings.items()},
        "products_per_second": {
            k: round(BATCH / v, 1) for k, v in timings.items()
        },
        "speedup_vs_scalar_loop": {
            "batched": round(speedup_batched, 2),
            "bitplane": round(speedup_bitplane, 2),
        },
    }
    out_path = REPO_ROOT / "BENCH_simulator_batched.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))
    # Acceptance bar: the bit-plane engine amortizes one compiled structure
    # over 64 lanes; anything under 10x the per-vector loop is a regression.
    assert speedup_bitplane >= 10.0
