"""Fig. 18: speedup vs batch size against the V100, 64x64 at 95%.

Paper shape: "With 64x64, the GPU has more computational intensity to fill
before it becomes utilized" — GPU latency is nearly flat in batch, so the
speedup decays as the FPGA's linear batch cost grows, but stays >= 1.
"""

from conftest import run_once

from repro.bench.experiments import fig18_gpu_batching_64
from repro.bench.shapes import is_monotone_decreasing


def test_fig18_gpu_batching_64(benchmark, record_result):
    result = record_result(run_once(benchmark, fig18_gpu_batching_64))
    assert is_monotone_decreasing(result.column("speedup_cusparse"))
    assert is_monotone_decreasing(result.column("speedup_optimized"))
    # The tiny matrix leaves the GPU underutilized: latency ~flat with batch.
    opt = result.column("optimized_ns")
    assert opt[-1] < opt[0] * 1.1
    # FPGA still ahead at batch 64.
    assert result.rows[-1]["speedup_optimized"] >= 1.0
    assert result.rows[-1]["speedup_cusparse"] >= 1.0
