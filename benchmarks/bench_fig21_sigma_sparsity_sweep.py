"""Figs. 21-22: latency and speedup vs SIGMA across sparsities (1024x1024).

Paper shape: "SIGMA sees huge latency improvements as sparsity increases,
taking it into the nanosecond regime.  However, even 90% sparsity and
below is enough to push it back into the microsecond regime, which yields
a large advantage to our design."
"""

from conftest import run_once

from repro.bench.experiments import fig21_22_sigma_sparsity
from repro.bench.shapes import is_monotone_decreasing


def test_fig21_22_sigma_sparsity(benchmark, record_result):
    result = record_result(run_once(benchmark, fig21_22_sigma_sparsity))
    by_sparsity = {row["element_sparsity_pct"]: row for row in result.rows}
    # SIGMA latency falls steeply as sparsity rises.
    assert is_monotone_decreasing(result.column("sigma_ns"))
    # Microsecond regime at 90% and below; approaching nanoseconds at 98%.
    for sparsity in (70, 80, 90):
        assert by_sparsity[sparsity]["sigma_ns"] > 900
    assert by_sparsity[98]["sigma_ns"] < 500
    # The advantage shrinks with sparsity but the FPGA always wins.
    speedups = result.column("speedup")
    assert speedups[0] > speedups[-1]
    assert all(s > 1.0 for s in speedups)
    assert speedups[0] > 15  # large advantage at 70%
