"""Fig. 17: speedup vs batch size against the V100, 1024x1024 at 95%.

Paper shape: "the latency for the GPU solution scales sub-linearly with
respect to batch size [... ours] yields linear scaling. [...] In the 1024
case, our solution is still marginally better" at batch 64.
"""

from conftest import run_once

from repro.bench.experiments import fig17_gpu_batching_1024
from repro.bench.shapes import is_monotone_decreasing


def test_fig17_gpu_batching_1024(benchmark, record_result):
    result = record_result(run_once(benchmark, fig17_gpu_batching_1024))
    # Speedups decrease monotonically with batch size for both kernels.
    assert is_monotone_decreasing(result.column("speedup_cusparse"))
    assert is_monotone_decreasing(result.column("speedup_optimized"))
    # FPGA latency is linear in batch (up to table rounding).
    fpga = result.column("fpga_ns")
    batches = result.column("batch")
    assert abs(fpga[-1] / fpga[0] - batches[-1] / batches[0]) < 0.1
    # GPU latency is sublinear in batch.
    opt = result.column("optimized_ns")
    assert opt[-1] / opt[0] < 0.25 * (batches[-1] / batches[0])
    # Still ahead at batch 64 (the paper's "marginally better").
    last = result.rows[-1]
    assert last["speedup_optimized"] >= 1.0
    assert last["speedup_cusparse"] >= 1.0
    # Batch-1 point is the pure-latency comparison from Fig. 15/16.
    assert result.rows[0]["speedup_cusparse"] > 100
