"""Shared helpers for the per-figure benchmark suite.

Each benchmark runs one experiment from :mod:`repro.bench.experiments`
exactly once under pytest-benchmark timing, prints the paper-style table,
writes it to ``benchmarks/results/<id>.txt``, and asserts the qualitative
shape the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.harness import ExperimentResult, format_experiment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Persist and print a finished experiment; returns it for asserts."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = format_experiment(result)
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
        print()
        print(text)
        return result

    return _record


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
