"""Ablation benches for the reproduction's own design choices.

Not figures from the paper — these quantify the decisions documented in
DESIGN.md (recoding scheme, tree style, Sec. VIII optimizations).
"""

from conftest import run_once

from repro.bench.ablations import (
    ablation_cgra,
    ablation_pipelined_broadcast,
    ablation_recoding,
    ablation_tiling,
    ablation_tree_style,
)


def test_ablation_recoding(benchmark, record_result):
    result = record_result(run_once(benchmark, ablation_recoding))
    for row in result.rows:
        # NAF is a lower bound for the chain recoder.
        assert row["ones_naf"] <= row["ones_csd"] <= row["ones_pn"]
        # Listing 1 stays close to optimal (within a few % of ones).
        if row["ones_naf"]:
            assert row["ones_csd"] / row["ones_naf"] < 1.12


def test_ablation_tree_style(benchmark, record_result):
    result = record_result(run_once(benchmark, ablation_tree_style))
    for row in result.rows:
        assert row["dffs_padded"] >= row["dffs_compact"]
        assert row["ff_blowup"] >= 1.0
    # At 98% sparsity on a 256-dim matrix, the paper-literal construction
    # needs several times the flip-flops — the Fig. 10 contradiction.
    sparse = [r for r in result.rows if r["element_sparsity_pct"] == 98]
    assert any(row["ff_blowup"] > 2.0 for row in sparse)


def test_ablation_pipelined_broadcast(benchmark, record_result):
    result = record_result(run_once(benchmark, ablation_pipelined_broadcast))
    for row in result.rows:
        # Pipelining never slows the clock.
        assert row["fmax_piped_mhz"] >= row["fmax_mhz"]
    # Multi-SLR designs see a real end-to-end win despite extra cycles.
    multi = [r for r in result.rows if r["slr_span"] >= 3]
    assert multi and all(row["net_gain"] > 1.2 for row in multi)


def test_ablation_cgra(benchmark, record_result):
    result = record_result(run_once(benchmark, ablation_cgra))
    for row in result.rows:
        assert row["density_gain"] > 10
        assert row["frequency_gain"] > 1.5
        assert row["matrix_swap_cycles"] < 64


def test_ablation_tiling(benchmark, record_result):
    result = record_result(run_once(benchmark, ablation_tiling))
    untiled = result.rows[0]
    assert untiled["tiles"] == 1
    tiled = [row for row in result.rows if row["tiles"] > 1]
    assert tiled, "expected at least one multi-tile budget"
    for row in tiled:
        # FPGA reconfiguration dominates once tiling kicks in...
        assert row["fpga_reconfig_frac"] > 0.99
        # ...while pipeline reconfiguration keeps it negligible.
        assert row["cgra_reconfig_frac"] < 0.05
        assert row["fpga_vs_cgra"] > 1e3
