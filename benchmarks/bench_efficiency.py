"""Energy-per-product comparison (the paper's Sec. VII power argument).

Not a paper figure — the paper explicitly declines a numeric power
comparison — but its qualitative claim ("it would be reasonable to assume
that the dynamic power would be correspondingly lower") is quantified on
the reproduction's own models here.
"""

from conftest import run_once

from repro.bench.efficiency import efficiency_comparison


def test_efficiency_comparison(benchmark, record_result):
    result = record_result(run_once(benchmark, efficiency_comparison))
    for row in result.rows:
        assert row["energy_gain"] > 10, row  # orders of magnitude, in fact
    # The gain is largest where the GPU is latency-bound (small dims burn
    # TDP-scale power waiting on the floor).
    assert result.rows[0]["energy_gain"] > result.rows[-1]["energy_gain"] * 0.5
