"""Measured serving throughput: micro-batched vs single-request-per-call.

The serve layer's reason to exist, quantified.  A 64x64 CSD-recoded
matrix is deployed through :class:`repro.serve.MatMulService` (two
column shards, bit-plane engine) and hit with an offered batch of 64
single-vector requests two ways:

* **single-request-per-call** — each request is its own hardware call
  (``service.multiply`` per vector), the way a naive server would drive
  the simulator: 64 one-lane bit-plane passes;
* **micro-batched** — the same 64 requests submitted concurrently
  through the asyncio micro-batcher, which coalesces them into
  lane-packed executions (one 64-lane pass when the batch fills).

Results (plus service telemetry) are written to
``BENCH_serve_throughput.json`` at the repo root.  The asserted
contract: micro-batching sustains **>= 4x** the single-request-per-call
throughput at offered batch 64 — in practice the gap is far larger,
because a 64-lane bit-plane pass costs barely more than a 1-lane pass.

The measured deployment is pinned to ``engine="bitplane"``: the >= 4x
claim is about amortizing the *gate-level cycle loop* across lanes,
and the gate engines remain the serving path whenever faults are
active.  The default ``engine="auto"`` deployment (fused shift-add
schedule, no cycle loop) is measured alongside and recorded in the
JSON without an assertion — per-request overhead, not hardware time,
dominates there, so batching matters far less (that engine's own bar
lives in ``BENCH_engine_fused.json``).

Run::

    pytest benchmarks/bench_serve_throughput.py
"""

import asyncio
import json
import pathlib
import time

import numpy as np
import pytest

from repro.serve import MatMulService

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OFFERED_BATCH = 64
SHARDS = 2
REQUIRED_SPEEDUP = 4.0


@pytest.fixture(scope="module")
def deployed():
    rng = np.random.default_rng(7)
    matrix = rng.integers(-128, 128, size=(64, 64))
    matrix[rng.random((64, 64)) < 0.5] = 0
    service = MatMulService(max_batch=OFFERED_BATCH, max_delay_s=0.005)
    handle = service.deploy(
        matrix, input_width=8, scheme="csd", shards=SHARDS, engine="bitplane"
    )
    fused_handle = service.deploy(
        matrix, input_width=8, scheme="csd", shards=SHARDS, engine="auto"
    )
    vectors = rng.integers(-128, 128, size=(OFFERED_BATCH, 64))
    yield service, handle, fused_handle, matrix, vectors
    service.close()


def _best_of(fn, repeats=3):
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_micro_batched_throughput(deployed):
    service, handle, fused_handle, matrix, vectors = deployed
    golden = vectors @ matrix

    # Warm both paths and check bit-exactness before timing anything.
    single = np.vstack([service.multiply(handle, vec[None, :]) for vec in vectors])
    assert np.array_equal(single, golden)
    batched = asyncio.run(service.submit_many(handle, vectors))
    assert np.array_equal(batched, golden)
    assert np.array_equal(
        asyncio.run(service.submit_many(fused_handle, vectors)), golden
    )

    def run_single():
        for vec in vectors:
            service.multiply(handle, vec[None, :])

    def run_batched():
        asyncio.run(service.submit_many(handle, vectors))

    seconds = {
        "single_request_per_call": _best_of(run_single, repeats=2),
        "micro_batched": _best_of(run_batched, repeats=3),
    }
    speedup = seconds["single_request_per_call"] / seconds["micro_batched"]
    telemetry = service.telemetry(handle)

    # The default fused deployment, measured for the record (no bar here;
    # see the module docstring and BENCH_engine_fused.json).
    fused_seconds = {
        "single_request_per_call": _best_of(
            lambda: [
                service.multiply(fused_handle, vec[None, :]) for vec in vectors
            ],
            repeats=3,
        ),
        "micro_batched": _best_of(
            lambda: asyncio.run(service.submit_many(fused_handle, vectors)),
            repeats=3,
        ),
    }

    record = {
        "matrix": "64x64 csd, ~50% element sparsity, s8 inputs",
        "offered_batch": OFFERED_BATCH,
        "shards": SHARDS,
        "engine": handle.engine,
        "seconds": {k: round(v, 6) for k, v in seconds.items()},
        "requests_per_second": {
            k: round(OFFERED_BATCH / v, 1) for k, v in seconds.items()
        },
        "speedup_micro_batched": round(speedup, 2),
        "required_speedup": REQUIRED_SPEEDUP,
        "fused_engine": {
            "effective_engine": service.telemetry(fused_handle)["engine"][
                "effective"
            ],
            "seconds": {k: round(v, 6) for k, v in fused_seconds.items()},
            "requests_per_second": {
                k: round(OFFERED_BATCH / v, 1) for k, v in fused_seconds.items()
            },
        },
        "batcher_mean_occupancy": telemetry["batcher"]["mean_occupancy"],
        "cache": service.cache.stats(),
    }
    out_path = REPO_ROOT / "BENCH_serve_throughput.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))
    # Acceptance bar: filling the bit-plane lanes from request traffic
    # must beat one-hardware-call-per-request by >= 4x at offered batch 64.
    assert speedup >= REQUIRED_SPEEDUP
