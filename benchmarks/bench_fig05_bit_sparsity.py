"""Fig. 5: hardware utilization vs bit-sparsity of a 64x64 matrix.

Paper shape: "the total hardware cost of our architecture is linear with
respect to the number of bits set in the weight matrix."
"""

from conftest import run_once

from repro.bench.experiments import fig05_bit_sparsity
from repro.bench.shapes import linear_fit_r_squared


def test_fig05_bit_sparsity(benchmark, record_result):
    result = record_result(run_once(benchmark, fig05_bit_sparsity))
    ones = result.column("ones")
    luts = result.column("lut")
    ffs = result.column("ff")
    lutrams = result.column("lutram")
    # Linear in ones (the paper's headline Sec. IV claim).
    assert linear_fit_r_squared(ones, luts) > 0.999
    assert linear_fit_r_squared(ones, ffs) > 0.999
    # Monotone decreasing cost with increasing sparsity.
    assert all(b <= a for a, b in zip(luts, luts[1:]))
    # FF ~ 2x LUT for non-trivial designs.
    for lut, ff in zip(luts[:-1], ffs[:-1]):
        assert 1.7 < ff / lut < 2.6
    # LUTRAM is flat (I/O shift registers only).
    assert max(lutrams) == min(lutrams)
