"""Table I: the bit-serial addition example (3 + 7 = 10)."""

from conftest import run_once

from repro.bench.experiments import table1_bitserial_addition


def test_table1_bitserial_addition(benchmark, record_result):
    result = record_result(run_once(benchmark, table1_bitserial_addition))
    # The paper's exact rows.
    assert [r["cin"] for r in result.rows] == [0, 1, 1, 1]
    assert [r["s"] for r in result.rows] == [0, 1, 0, 1]
    assert [r["cout"] for r in result.rows] == [1, 1, 1, 0]
    assert [r["result"] for r in result.rows] == ["0000", "1000", "0100", "1010"]
