"""SLO alerting benchmark: observed serving stays fast, burn rules fire.

One loopback 3-server fleet over a prewarmed store, with one endpoint
routed through a :class:`~repro.cluster.chaos.ChaosProxy` (zero faults
until the chaos phase).  Two contracts:

* **Observation is near-free.**  The same offered load is served by an
  *observed* service (stage profiler on client and every server, plus a
  background :class:`~repro.obs.history.MetricsHistory` sampler
  scraping the whole fleet) and an *unobserved* one, interleaved
  best-of-N; the observed deployment must keep at least
  ``THROUGHPUT_FLOOR`` (90%) of the unobserved throughput.
* **The burn rule fires, attributes, and clears.**  Driving the SLO
  engine on a fake clock (sampling every ``STEP_S``), a healthy phase
  raises no alert; injecting a chunk delay on the proxied link makes
  the latency SLO's fast+slow burn windows trip **by the second
  post-fault sample**, with the ``slo_burn`` event blaming the ``wire``
  stage (the profiler histograms move most there, and specificity
  breaks the tie against the containing stages); removing the fault
  clears the alert (``slo_ok``) once the bad samples age out of the
  fast window.

Results land in ``BENCH_slo_alerting.json`` at the repo root.

Run::

    pytest benchmarks/bench_slo_alerting.py
"""

import asyncio
import json
import pathlib
import time

import numpy as np

from repro.cluster import ClusterController
from repro.cluster.chaos import ChaosProxy
from repro.obs import (
    BurnRatePolicy,
    FleetMetrics,
    FlightRecorder,
    LatencySLO,
    MetricsHistory,
    SLOEngine,
    StageProfiler,
)
from repro.serve.prewarm import prewarm

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DIM = 128
SPARSITY = 0.5
SERVERS = 3
WAVE = 32
WARMUP_WAVES = 2
MEASURE_ROUNDS = 8
THROUGHPUT_FLOOR = 0.90

# The burn rule, shrunk to subsecond windows on a fake clock: sampling
# every 250 ms, the fast window holds 5 samples and the slow window 9.
# With a 0.9 target (budget 0.1), one bad sample in the fast window is
# burn 2.0 (== threshold, quiet) and two are burn 4.0 — so the alert
# fires exactly on the second post-fault sample, never the first.
STEP_S = 0.25
POLICY = dict(fast_window_s=1.0, slow_window_s=2.0, threshold=2.0)
SLO_TARGET = 0.9
P99_THRESHOLD_S = 0.06
TELEMETRY_WINDOW = 128
FAULT_DELAY_S = 0.25


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _matrix():
    rng = np.random.default_rng(41)
    matrix = rng.integers(-128, 128, size=(DIM, DIM))
    matrix[rng.random((DIM, DIM)) < SPARSITY] = 0
    return matrix


def _wave(service, handle, vectors, golden):
    async def drive():
        start = time.perf_counter()
        rows = await service.submit_many(handle, vectors)
        return rows, time.perf_counter() - start

    rows, elapsed = asyncio.run(drive())
    assert np.array_equal(rows, golden)
    return elapsed


def test_slo_alerting(tmp_path):
    matrix = _matrix()
    vectors = np.random.default_rng(43).integers(-128, 128, size=(WAVE, DIM))
    golden = vectors @ matrix
    store = tmp_path / "store"
    prewarm(
        {
            "defaults": {"input_width": 8, "scheme": "csd"},
            "workloads": [
                {"name": "fleet", "matrix": matrix.tolist(), "shards": SERVERS}
            ],
        },
        store=store,
    )

    profiler = StageProfiler()
    recorder = FlightRecorder()
    with ClusterController(store, profile_servers=True) as controller:
        controller.start_local_fleet(SERVERS)
        # One link goes through the chaos proxy (fault-free for now);
        # BOTH services route through it, so the throughput comparison
        # is apples to apples.
        proxy = ChaosProxy(upstream=controller.endpoints[0])
        controller.endpoints[0] = proxy.endpoint
        with proxy, controller.remote_service() as plain_service, (
            controller.remote_service(
                profiler=profiler, telemetry_window=TELEMETRY_WINDOW
            )
        ) as observed_service:
            plain_handle = controller.deploy_fleet(plain_service, matrix)
            observed_handle = controller.deploy_fleet(observed_service, matrix)

            # -- phase 1: observed throughput floor ----------------------
            live_history = MetricsHistory(
                FleetMetrics(service=observed_service)
            )
            live_history.start(interval_s=0.1)
            try:
                for _ in range(WARMUP_WAVES):
                    _wave(plain_service, plain_handle, vectors, golden)
                    _wave(observed_service, observed_handle, vectors, golden)
                plain_s = observed_s = float("inf")
                pair = (
                    (plain_service, plain_handle),
                    (observed_service, observed_handle),
                )
                for round_i in range(MEASURE_ROUNDS):
                    first, second = (
                        pair if round_i % 2 == 0 else (pair[1], pair[0])
                    )
                    for service, handle in (first, second):
                        elapsed = _wave(service, handle, vectors, golden)
                        if service is plain_service:
                            plain_s = min(plain_s, elapsed)
                        else:
                            observed_s = min(observed_s, elapsed)
            finally:
                live_history.close()
            throughput_ratio = plain_s / observed_s
            assert throughput_ratio >= THROUGHPUT_FLOOR, (
                f"observed serving keeps only {throughput_ratio:.1%} of "
                f"unobserved throughput (floor {THROUGHPUT_FLOOR:.0%}): "
                f"observed {observed_s:.6f}s vs plain {plain_s:.6f}s"
            )
            assert len(live_history) >= 2
            assert live_history.sample_errors == 0

            # -- phase 2: burn-rate alerting on a fake clock -------------
            clock = FakeClock()
            history = MetricsHistory(
                FleetMetrics(service=observed_service), clock=clock
            )
            engine = SLOEngine(
                history,
                [
                    LatencySLO(
                        "p99-under-60ms",
                        threshold_s=P99_THRESHOLD_S,
                        target=SLO_TARGET,
                    )
                ],
                policy=BurnRatePolicy(**POLICY),
                recorder=recorder,
            )
            history.add_listener(engine.listener())

            def tick():
                _wave(observed_service, observed_handle, vectors, golden)
                history.sample()
                (status,) = engine.statuses
                clock.advance(STEP_S)
                return status

            healthy = [tick() for _ in range(9)]
            assert not any(s["firing"] for s in healthy), (
                "burn alert fired during the healthy phase: "
                f"{[s for s in healthy if s['firing']]}"
            )
            assert recorder.events(kind="slo_burn") == []

            proxy.delay_s = FAULT_DELAY_S
            first_bad = tick()
            second_bad = tick()
            proxy.delay_s = 0.0
            assert second_bad["firing"], (
                "latency burn alert must fire by the second post-fault "
                f"sample; statuses were {first_bad} / {second_bad}"
            )
            fired_at = 1 if first_bad["firing"] else 2
            (burn,) = recorder.events(kind="slo_burn")
            assert burn["slo"] == "p99-under-60ms"
            assert burn["stage"] == "wire", (
                "the chaos-delayed link must be attributed to the wire "
                f"stage, got {burn['stage']!r}"
            )

            cleared_after = None
            for k in range(40):
                status = tick()
                if not status["firing"]:
                    cleared_after = k + 1
                    break
            assert cleared_after is not None, (
                "burn alert never cleared after the fault was removed"
            )
            (ok,) = recorder.events(kind="slo_ok")
            assert ok["slo"] == "p99-under-60ms"
            # Once the slow window has also flushed the fault, the
            # budget reads healthy again.
            for _ in range(9):
                final = tick()
            assert not final["firing"]
            assert final["error_budget_remaining"] > 0.0

    record = {
        "matrix": f"{DIM}x{DIM} csd, ~{SPARSITY:.0%} element sparsity, s8 inputs",
        "servers": SERVERS,
        "offered_batch": WAVE,
        "throughput": {
            "unobserved_s": round(plain_s, 6),
            "observed_s": round(observed_s, 6),
            "observed_fraction": round(throughput_ratio, 4),
            "floor": THROUGHPUT_FLOOR,
            "observed_rps": round(WAVE / observed_s, 1),
        },
        "alerting": {
            "policy": POLICY,
            "slo_target": SLO_TARGET,
            "p99_threshold_s": P99_THRESHOLD_S,
            "sampling_step_s": STEP_S,
            "fault_chunk_delay_s": FAULT_DELAY_S,
            "fired_after_samples": fired_at,
            "offending_stage": burn["stage"],
            "burn_fast_at_fire": burn["burn_fast"],
            "burn_slow_at_fire": burn["burn_slow"],
            "cleared_after_samples": cleared_after,
            "false_alarms_healthy_phase": 0,
        },
        "profiler_samples": profiler.stats()["samples"],
        "bit_exact": True,
    }
    out_path = REPO_ROOT / "BENCH_slo_alerting.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))
