"""Figs. 19-20: latency and speedup vs SIGMA across dimensions (98% sparse).

Paper shape: "For small dimensions, SIGMA does report nanosecond-scale
latency [...] However, after 1024x1024, the elements no longer fit in the
PE grid and the computation must be tiled [...] This yields a 4.1x speedup
for our solution in the worst case, but we quickly gain a 25x advantage as
the matrix size increases."
"""

from conftest import run_once

from repro.bench.experiments import fig19_20_sigma_dimension
from repro.bench.shapes import within_band


def test_fig19_20_sigma_dimension(benchmark, record_result):
    result = record_result(run_once(benchmark, fig19_20_sigma_dimension))
    by_dim = {row["dim"]: row for row in result.rows}
    # Untiled below 1024 at 98% sparsity; tiled at and beyond.
    for dim in (64, 128, 256, 512):
        assert not by_dim[dim]["tiled"]
        assert by_dim[dim]["sigma_ns"] < 1000  # nanosecond-scale
    for dim in (1024, 2048, 4096):
        assert by_dim[dim]["tiled"]
    # The FPGA wins everywhere; worst case a small single-digit factor.
    worst = min(row["speedup"] for row in result.rows)
    assert within_band(worst, 2.5, 6.0), f"worst-case speedup {worst}"
    # Large advantage at 4096 (paper: ~25x once memory-bound).
    assert within_band(by_dim[4096]["speedup"], 15, 50)
    # Memory-bound linear scaling: 4096 has ~4x the speedup of 2048.
    assert by_dim[4096]["speedup"] > by_dim[2048]["speedup"] > by_dim[1024]["speedup"]
