"""Narrative-claim studies: Sec. I's dense-accelerator framing and
Sec. II's reservoir-sparsity guidance, quantified on this reproduction."""

from conftest import run_once

from repro.bench.studies import (
    study_dense_accelerator,
    study_quantization_width,
    study_reservoir_sparsity,
)


def test_study_dense_accelerator(benchmark, record_result):
    result = record_result(run_once(benchmark, study_dense_accelerator))
    for row in result.rows:
        # The dense unit's useful work fraction is the density (2%).
        assert row["dense_util_pct"] < 5
        # The spatial design wins by a wide margin at every dimension.
        assert row["speedup"] > 5
    # Tiling makes the dense gap widen with dimension.
    assert result.rows[-1]["tiles"] > result.rows[0]["tiles"]


def test_study_reservoir_sparsity(benchmark, record_result):
    result = record_result(run_once(benchmark, study_reservoir_sparsity))
    by_sparsity = {row["element_sparsity_pct"]: row for row in result.rows}
    dense = by_sparsity[0]
    sparse = by_sparsity[90]
    # Hardware cost falls roughly linearly with sparsity...
    assert sparse["ones"] < 0.2 * dense["ones"]
    # ...while task quality does not collapse (Gallicchio's guidance).
    assert sparse["narma_nrmse"] < dense["narma_nrmse"] * 1.5
    assert sparse["memory_capacity"] > 0.5 * dense["memory_capacity"]
    # Every configuration still solves NARMA far better than the mean
    # predictor (NRMSE 1.0).
    for row in result.rows:
        assert row["narma_nrmse"] < 0.8


def test_study_quantization_width(benchmark, record_result):
    result = record_result(run_once(benchmark, study_quantization_width))
    by_width = {row["weight_width"]: row for row in result.rows}
    # Kleyko et al.: 4-bit weights track full 8-bit quality closely.
    assert by_width[4]["narma_nrmse"] < by_width[8]["narma_nrmse"] * 1.4
    # 2-bit weights finally degrade noticeably relative to 4-bit.
    assert by_width[2]["narma_nrmse"] > by_width[4]["narma_nrmse"]
    # Fewer weight bits means fewer ones, hence less hardware.
    assert by_width[3]["ones"] < by_width[8]["ones"]
    # 3+ bit reservoirs beat the mean predictor; at 2 bits the weights
    # round to nothing and the reservoir collapses — the flip side of
    # "3-4 bits leads to no accuracy loss".
    for row in result.rows:
        if row["weight_width"] >= 3:
            assert row["narma_nrmse"] < 1.0
    assert by_width[2]["narma_nrmse"] == max(r["narma_nrmse"] for r in result.rows)
