"""Fig. 23: speedup vs SIGMA across batch sizes (1024x1024, 95% sparse).

Paper shape: "At batch-size 2, SIGMA does find opportunity to utilize more
PEs and our advantage decreases.  However, batch-size 4 and beyond quickly
see SIGMA in the memory-bound region again, which causes the speedup to
saturate at 5.4x."
"""

from conftest import run_once

from repro.bench.experiments import fig23_sigma_batching
from repro.bench.shapes import is_monotone_decreasing, within_band


def test_fig23_sigma_batching(benchmark, record_result):
    result = record_result(run_once(benchmark, fig23_sigma_batching))
    speedups = result.column("speedup")
    # Monotone decrease toward an asymptote.
    assert is_monotone_decreasing(speedups)
    # Saturation: the last two batch points are within a few percent.
    assert speedups[-1] > speedups[-2] * 0.9
    # The asymptote is a small-multiple advantage (paper: 5.4x).
    assert within_band(speedups[-1], 3.0, 8.0)
    # Batch-1 matches the Fig. 21/22 point at 95%.
    assert within_band(speedups[0], 8.0, 25.0)
