"""Fig. 9: CSD vs naive resource utilization on element-sparse matrices.

Paper shape: "CSD results are strictly better than the naive
implementation [...] reduces the hardware by 17% for any level of
element-sparsity."
"""

from conftest import run_once

from repro.bench.experiments import fig09_csd


def test_fig09_csd(benchmark, record_result):
    result = record_result(run_once(benchmark, fig09_csd))
    for row in result.rows:
        assert row["lut_csd"] <= row["lut_v"]
        assert row["ff_csd"] <= row["ff_v"]
    savings = [
        row["lut_saving_pct"]
        for row in result.rows
        if row["element_sparsity_pct"] < 100
    ]
    # ~17% savings at every sparsity level below the empty endpoint.
    for saving in savings:
        assert 12.0 < saving < 22.0, f"CSD saving {saving}% outside the paper band"
