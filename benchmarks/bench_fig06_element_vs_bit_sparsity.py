"""Fig. 6: element-sparse matrices cost the same as bit-sparse matrices.

Paper shape: "The two lines are nearly identical, which means that we
don't have to make any concessions to support element-sparse designs."
"""

from conftest import run_once

from repro.bench.experiments import fig06_element_vs_bit_sparsity


def test_fig06_element_vs_bit_sparsity(benchmark, record_result):
    result = record_result(run_once(benchmark, fig06_element_vs_bit_sparsity))
    for row in result.rows:
        if row["lut_bs"] > 2000:  # skip near-empty endpoints (pure noise)
            gap = abs(row["lut_es"] - row["lut_bs"]) / row["lut_bs"]
            assert gap < 0.10, f"element/bit sparse LUT gap {gap:.1%} at {row}"
            ff_gap = abs(row["ff_es"] - row["ff_bs"]) / row["ff_bs"]
            assert ff_gap < 0.10
