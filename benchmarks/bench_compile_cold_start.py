"""Measured cold-start cost of the three compile-pipeline entry points.

The staged pipeline's reason to exist, quantified.  One 160x160
CSD-recoded matrix (~40% element sparsity) is deployed through
:class:`repro.serve.CompileCache` against the same artifact directory in
three states:

* **fresh compile** — empty directory: plan + ``build_circuit`` +
  lowering all run (the old every-restart cost);
* **plan-cache hit** — only the ``.plan.json`` artifact survives:
  re-planning is skipped but the mechanical netlist build and lowering
  still run (the pre-kernel-artifact behaviour of this repository);
* **kernel-cache hit** — both artifacts present: the lowered kernel is
  loaded and executed directly.  The stage counters
  (:data:`repro.core.stages.STAGES`) must record **zero** ``plan``,
  ``build``, and ``lower`` executions — the deploy is pure artifact I/O.

Results are written to ``BENCH_compile_cold_start.json`` at the repo
root.  The asserted contract: a warm kernel store makes deployment
**>= 5x** faster than a fresh compile (typically ~10x at this size, and
growing with matrix size since artifact I/O scales with the kernel's
array bytes, not with netlist construction).

Run::

    pytest benchmarks/bench_compile_cold_start.py
"""

import json
import pathlib
import time

import numpy as np

from repro.core.stages import STAGES
from repro.serve import CompileCache

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DIM = 160
SPARSITY = 0.4
REQUIRED_SPEEDUP = 5.0
REPEATS = 3


def _matrix():
    rng = np.random.default_rng(7)
    matrix = rng.integers(-128, 128, size=(DIM, DIM))
    matrix[rng.random((DIM, DIM)) < SPARSITY] = 0
    return matrix


def _timed_deploy(directory, matrix):
    """One fresh-process deployment: new cache instance, one get()."""
    cache = CompileCache(directory=directory)
    before = STAGES.snapshot()
    start = time.perf_counter()
    entry = cache.get(matrix, input_width=8, scheme="csd")
    elapsed = time.perf_counter() - start
    return entry, elapsed, STAGES.delta(before)


def test_cold_start_scenarios(tmp_path):
    matrix = _matrix()
    vectors = np.random.default_rng(1).integers(-128, 128, size=(4, DIM))
    golden = vectors @ matrix
    seconds: dict[str, float] = {}
    stages: dict[str, dict] = {}

    # Scenario 1: fresh compile into an empty artifact store.  Re-run in
    # a clean directory each repeat; keep the best time (as the other
    # benchmarks do) and the first stage delta.
    best = float("inf")
    for i in range(REPEATS):
        workdir = tmp_path / f"fresh{i}"
        workdir.mkdir()
        entry, elapsed, delta = _timed_deploy(workdir, matrix)
        assert entry.source == "compiled"
        best = min(best, elapsed)
        if i == 0:
            stages["fresh_compile"] = delta
            assert delta.get("plan") == 1
            assert delta.get("build") == 1
            assert delta.get("lower") == 1
    seconds["fresh_compile"] = best

    # One persistent store for the warm scenarios.
    store = tmp_path / "store"
    store.mkdir()
    CompileCache(directory=store).get(matrix, input_width=8, scheme="csd")

    # Scenario 2: plan survives, kernel does not (pre-kernel-artifact
    # stores, or a pruned kernel).  The rebuild re-persists the kernel,
    # so it must be deleted before every repeat.
    best = float("inf")
    for i in range(REPEATS):
        next(store.glob("*.kernel.npz")).unlink()
        entry, elapsed, delta = _timed_deploy(store, matrix)
        assert entry.source == "disk"
        best = min(best, elapsed)
        if i == 0:
            stages["plan_cache_hit"] = delta
            assert delta.get("plan", 0) == 0
            assert delta.get("build") == 1
            assert delta.get("lower") == 1
    seconds["plan_cache_hit"] = best

    # Scenario 3: full kernel hit — zero pipeline work, by counter.
    best = float("inf")
    for i in range(REPEATS):
        entry, elapsed, delta = _timed_deploy(store, matrix)
        assert entry.source == "kernel"
        assert entry.circuit is None
        best = min(best, elapsed)
        if i == 0:
            stages["kernel_cache_hit"] = delta
            assert delta.get("plan", 0) == 0
            assert delta.get("build", 0) == 0
            assert delta.get("lower", 0) == 0
        # The loaded kernel is the real executable, not a stub.
        assert np.array_equal(entry.fast.multiply_batch(vectors), golden)
    seconds["kernel_cache_hit"] = best

    speedup_kernel = seconds["fresh_compile"] / seconds["kernel_cache_hit"]
    record = {
        "matrix": f"{DIM}x{DIM} csd, ~{SPARSITY:.0%} element sparsity, s8 inputs",
        "seconds": {k: round(v, 6) for k, v in seconds.items()},
        "speedup_vs_fresh": {
            k: round(seconds["fresh_compile"] / v, 2) for k, v in seconds.items()
        },
        "stage_counts": stages,
        "required_speedup_kernel_hit": REQUIRED_SPEEDUP,
        "kernel_artifact_bytes": next(store.glob("*.kernel.npz")).stat().st_size,
    }
    out_path = REPO_ROOT / "BENCH_compile_cold_start.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))
    # Acceptance bar: a warm kernel store must make deployment >= 5x
    # faster than a fresh compile, with zero build/lower stage work.
    assert speedup_kernel >= REQUIRED_SPEEDUP
