"""Fig. 11: large-scale frequency results.

Paper shape: "Within one SLR, the frequencies range from 597MHz to 445MHz.
Designs requiring 2 SLRs range from 296MHz to 400MHz.  Matrices bigger
than 2 SLRs seem relatively consistent between 225MHz and 250MHz."
"""

from conftest import run_once

from repro.bench.experiments import fig11_frequency


def test_fig11_frequency(benchmark, record_result):
    result = record_result(run_once(benchmark, fig11_frequency))
    for row in result.rows:
        fmax = row["fmax_mhz"]
        span = row["slr_span"]
        if span == 1:
            assert 440 <= fmax <= 600, row
        elif span == 2:
            assert 290 <= fmax <= 410, row
        else:
            assert 215 <= fmax <= 290, row
    # Bigger matrices run slower: frequency anti-correlates with LUTs.
    ordered = sorted(result.rows, key=lambda r: r["lut"])
    assert ordered[0]["fmax_mhz"] > ordered[-1]["fmax_mhz"]
