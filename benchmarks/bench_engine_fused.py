"""Measured fused-engine throughput against the gate-level engines.

The fused engine is the ``fuse`` stage's reason to exist: the compiled
structure *is* a static CSD shift-add schedule, so executing the
schedule directly (no cycle loop, no per-cycle allocation) should beat
even the bit-plane gate engine by an order of magnitude while staying
bit-exact.  This benchmark measures all three batch engines on the
64x64 CSD reference matrix (the same design point as
``bench_simulator_throughput.py``) at batch = 64 and writes the record
to ``BENCH_engine_fused.json`` at the repo root.

The asserted contract, not a hope: **fused >= 5x bitplane** products/s
at batch 64 (typically >= 15x), with results identical across engines.

Run::

    pytest benchmarks/bench_engine_fused.py
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.core.plan import plan_matrix
from repro.core.stages import STAGES
from repro.hwsim.builder import build_circuit
from repro.hwsim.fast import FastCircuit

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BATCH = 64
REQUIRED_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def compiled():
    rng = np.random.default_rng(7)
    matrix = rng.integers(-128, 128, size=(64, 64))
    matrix[rng.random((64, 64)) < 0.5] = 0
    plan = plan_matrix(matrix, input_width=8, scheme="csd", rng=rng)
    fast = FastCircuit.from_compiled(build_circuit(plan))
    return fast, matrix


def _best_of(fn, repeats):
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_fused_engine_comparison(compiled):
    """Batched vs bit-plane vs fused at batch=64, recorded to JSON."""
    fast, matrix = compiled
    rng = np.random.default_rng(11)
    vectors = rng.integers(-128, 128, size=(BATCH, 64))
    golden = vectors @ matrix

    before = STAGES.snapshot()
    fused_kernel = fast.fuse()
    fuse_delta = STAGES.delta(before)
    assert fuse_delta.get("fuse") == 1

    timings = {}
    for engine, repeats in (("batched", 3), ("bitplane", 5), ("fused", 20)):
        result = fast.multiply_batch(vectors, engine=engine)  # warm + check
        assert np.array_equal(result, golden), engine
        timings[engine] = _best_of(
            lambda engine=engine: fast.multiply_batch(vectors, engine=engine),
            repeats=repeats,
        )

    speedup_vs_bitplane = timings["bitplane"] / timings["fused"]
    record = {
        "matrix": "64x64 csd, ~50% element sparsity, s8 inputs",
        "batch": BATCH,
        "engines": {
            "batched": "dense batch axis over the gate-level cycle loop",
            "bitplane": "64 uint64-packed lanes per word, one cycle loop",
            "fused": "static CSD shift-add schedule, no cycle loop",
        },
        "fused_terms": int(fused_kernel.terms),
        "seconds": {k: round(v, 6) for k, v in timings.items()},
        "products_per_second": {
            k: round(BATCH / v, 1) for k, v in timings.items()
        },
        "fused_speedup_vs_bitplane": round(speedup_vs_bitplane, 2),
        "required_speedup_vs_bitplane": REQUIRED_SPEEDUP,
    }
    out_path = REPO_ROOT / "BENCH_engine_fused.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))
    # Acceptance bar: dropping the cycle loop must be worth >= 5x over
    # the fastest gate-level engine at the reference design point.
    assert speedup_vs_bitplane >= REQUIRED_SPEEDUP
