"""Fig. 8: utilization of a 64x64 matrix vs weight bitwidth.

Paper shape: "we observe a linear LUT and FF cost with respect to the
bit-width of the weights" (no cross-bit optimization).
"""

from conftest import run_once

from repro.bench.experiments import fig08_bitwidth
from repro.bench.shapes import linear_fit_r_squared


def test_fig08_bitwidth(benchmark, record_result):
    result = record_result(run_once(benchmark, fig08_bitwidth))
    widths = result.column("bitwidth")
    luts = result.column("lut")
    ffs = result.column("ff")
    assert linear_fit_r_squared(widths, luts) > 0.999
    assert linear_fit_r_squared(widths, ffs) > 0.999
    # 32-bit weights cost ~4x what 8-bit weights cost.
    by_width = {row["bitwidth"]: row["lut"] for row in result.rows}
    assert 3.3 < by_width[32] / by_width[8] < 4.7
