"""Overload drill: open-loop Poisson floods against an admitted fleet.

A 48x48 matrix is served by three loopback shard hosts, every link
routed through a :class:`~repro.cluster.chaos.ChaosProxy` that delays
each chunk — the wire has real latency, so capacity is finite and
measurable.  The drill then walks the overload arc:

1. **capacity** — closed-loop saturation measures what the service can
   actually sustain through the degraded links;
2. **1x** — an open-loop Poisson arrival process offers exactly that
   rate: almost everything is admitted and completes;
3. **3x** — arrivals triple, a greedy tenant hogs a fifth of them, and
   host 0 is killed mid-flood.  The admission controller sheds the
   excess (queue-full for the overflow, quota for the greedy tenant,
   expired for requests whose deadline died in the queue) while the
   killed shard degrades to local fallback.

Contracts asserted (an open-loop driver never slows down to match the
service, so these hold under genuine overload):

* **admitted work is bit-exact** — every completed row equals
  ``vector @ matrix`` exactly, through corruption-free chaos links,
  the kill, and the fallback;
* **goodput holds** — completed-per-second during the 3x flood stays
  within 80% of measured capacity: shedding protects the admitted;
* **shed work fails fast** — quota/queue refusals return in
  milliseconds, expirations within the deadline budget, and nothing
  ever hangs;
* **the books balance exactly** — offered == completed + queue_full +
  quota + expired, client-side per phase and in service telemetry, and
  the flight recorder holds exactly one ``request_shed`` event per
  refusal.

Results are written to ``BENCH_overload_shedding.json`` at the repo
root.

Run::

    pytest benchmarks/bench_overload_shedding.py
"""

import asyncio
import json
import pathlib
import time

import numpy as np

from repro.cluster import BackoffPolicy, ClusterController, wrap_fleet
from repro.obs.recorder import FlightRecorder
from repro.serve.admission import (
    AdmissionController,
    DeadlineExceeded,
    QueueFull,
    QuotaExceeded,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DIM = 48
SPARSITY = 0.5
SERVERS = 3
WAVE = 32                   # distinct vectors, reused round-robin
LINK_DELAY_S = 0.004        # chaos delay per chunk, each direction
REQUEST_TIMEOUT_S = 0.25
MAX_BATCH = 8
MAX_DELAY_S = 0.004
DEADLINE_S = 1.5
CAP_WORKERS = 32            # closed-loop saturation width
CAP_WINDOW_S = 1.2
CAP_CLAMP_RPS = 600.0       # keep the open-loop driver schedulable
TICK_S = 0.01               # Poisson arrivals are drawn per tick
GREEDY_EVERY = 5            # every 5th arrival is the greedy tenant
KILL_FRACTION = 0.3         # kill host 0 this far into the 3x flood
GOODPUT_FLOOR = 0.8
SHED_FAST_S = 0.25          # quota/queue refusals must return by this


def _matrix():
    rng = np.random.default_rng(41)
    matrix = rng.integers(-128, 128, size=(DIM, DIM))
    matrix[rng.random((DIM, DIM)) < SPARSITY] = 0
    return matrix


def _percentile(values, point):
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values), point))


async def _measure_capacity(service, handle, vectors):
    """Closed-loop saturation: CAP_WORKERS back-to-back submitters."""
    stop_at = time.perf_counter() + CAP_WINDOW_S
    completed = 0

    async def worker(seed):
        nonlocal completed
        i = seed
        while time.perf_counter() < stop_at:
            await service.submit(handle, vectors[i % WAVE])
            completed += 1
            i += 1

    start = time.perf_counter()
    await asyncio.gather(*(worker(k) for k in range(CAP_WORKERS)))
    return completed / (time.perf_counter() - start)


async def _poisson_flood(
    service, handle, vectors, golden, rate_rps, total,
    rng, kill_at=None, controller=None,
):
    """Open-loop Poisson arrivals at ``rate_rps``: the driver never
    waits for the service, so overload is real.  Returns the phase's
    outcome tally; every completed row is checked bit-exact inline."""
    tally = {
        "offered": 0, "completed": 0, "queue_full": 0, "quota": 0,
        "expired": 0, "errors": 0, "mismatches": 0,
        "ok_latency": [], "shed_latency": [], "expired_latency": [],
    }
    loop = asyncio.get_running_loop()
    kill_future = None

    async def one(idx):
        tenant = "greedy" if idx % GREEDY_EVERY == 0 else "default"
        t0 = time.perf_counter()
        try:
            row = await service.submit(
                handle, vectors[idx % WAVE], tenant=tenant,
                deadline_s=DEADLINE_S,
            )
        except QuotaExceeded:
            tally["quota"] += 1
            tally["shed_latency"].append(time.perf_counter() - t0)
        except QueueFull:
            tally["queue_full"] += 1
            tally["shed_latency"].append(time.perf_counter() - t0)
        except DeadlineExceeded:
            tally["expired"] += 1
            tally["expired_latency"].append(time.perf_counter() - t0)
        except Exception:
            tally["errors"] += 1
        else:
            tally["completed"] += 1
            tally["ok_latency"].append(time.perf_counter() - t0)
            if not np.array_equal(row, golden[idx % WAVE]):
                tally["mismatches"] += 1

    start = time.perf_counter()
    tasks = []
    launched = 0
    while launched < total:
        burst = min(int(rng.poisson(rate_rps * TICK_S)), total - launched)
        for _ in range(burst):
            if (
                kill_at is not None
                and kill_future is None
                and launched >= kill_at
            ):
                kill_future = loop.run_in_executor(
                    None, controller.kill_server, 0
                )
            tasks.append(asyncio.ensure_future(one(launched)))
            launched += 1
        await asyncio.sleep(TICK_S)
    tally["offered"] = launched
    tally["arrival_span_s"] = time.perf_counter() - start
    await asyncio.gather(*tasks)
    tally["busy_span_s"] = time.perf_counter() - start
    if kill_future is not None:
        await kill_future
    return tally


def _phase_record(tally, rate_rps):
    shed = tally["queue_full"] + tally["quota"] + tally["expired"]
    return {
        "offered_rate_rps": round(rate_rps, 1),
        "offered": tally["offered"],
        "completed": tally["completed"],
        "queue_full": tally["queue_full"],
        "quota": tally["quota"],
        "expired": tally["expired"],
        "shed_total": shed,
        "goodput_rps": round(tally["completed"] / tally["busy_span_s"], 1),
        "busy_span_s": round(tally["busy_span_s"], 3),
        "ok_p50_ms": round(_percentile(tally["ok_latency"], 50) * 1e3, 2),
        "ok_p99_ms": round(_percentile(tally["ok_latency"], 99) * 1e3, 2),
        "shed_p99_ms": round(_percentile(tally["shed_latency"], 99) * 1e3, 2),
        "expired_p99_ms": round(
            _percentile(tally["expired_latency"], 99) * 1e3, 2
        ),
    }


def test_overload_shedding(tmp_path):
    matrix = _matrix()
    vectors = np.random.default_rng(43).integers(-128, 128, size=(WAVE, DIM))
    golden = vectors @ matrix
    rng = np.random.default_rng(47)
    # Big enough that no shed event is ever evicted: the exact-count
    # reconciliation below depends on the ring never wrapping.
    recorder = FlightRecorder(capacity=32768)
    results = {"config": {
        "dim": DIM, "servers": SERVERS, "link_delay_s": LINK_DELAY_S,
        "max_batch": MAX_BATCH, "deadline_s": DEADLINE_S,
        "request_timeout_s": REQUEST_TIMEOUT_S,
    }}

    with ClusterController(
        tmp_path / "store", request_timeout_s=REQUEST_TIMEOUT_S
    ) as controller:
        controller.start_local_fleet(SERVERS)
        proxies, proxied = wrap_fleet(
            controller.endpoints, delay_s=LINK_DELAY_S, seed=53
        )
        try:
            backoff = BackoffPolicy(
                initial_s=0.05, multiplier=2.0, max_s=0.5, jitter=0.25
            )
            with controller.remote_service(
                max_batch=MAX_BATCH,
                max_delay_s=MAX_DELAY_S,
                probe_backoff=backoff,
                recorder=recorder,
            ) as service:
                handle = service.deploy(
                    matrix, shards=SERVERS, endpoints=proxied
                )

                async def drive():
                    capacity = await _measure_capacity(
                        service, handle, vectors
                    )
                    cap_used = min(capacity, CAP_CLAMP_RPS)
                    # Size admission to the measured fleet: the queue is
                    # worth ~0.6s of work, well under the 1.5s deadline,
                    # and the greedy tenant gets ~6% of capacity.
                    depth = max(16, min(96, int(cap_used * 0.6)))
                    admission = AdmissionController(max_queue_depth=depth)
                    admission.set_quota(
                        "greedy", rate_rps=max(4.0, cap_used * 0.06)
                    )
                    service.admission = admission
                    n1 = max(60, min(1200, int(cap_used * 1.5)))
                    flood1 = await _poisson_flood(
                        service, handle, vectors, golden, cap_used, n1, rng
                    )
                    # The 3x flood runs long enough (~5s of arrivals)
                    # that the mid-flood kill stall amortizes: goodput
                    # is a steady-state claim, not a lucky window.
                    rate3 = 3.0 * cap_used
                    n3 = max(240, min(9000, int(rate3 * 5.0)))
                    flood3 = await _poisson_flood(
                        service, handle, vectors, golden, rate3, n3, rng,
                        kill_at=int(n3 * KILL_FRACTION), controller=controller,
                    )
                    return capacity, cap_used, depth, flood1, flood3

                capacity, cap_used, depth, flood1, flood3 = asyncio.run(
                    drive()
                )

                results["capacity_rps"] = round(capacity, 1)
                results["capacity_used_rps"] = round(cap_used, 1)
                results["queue_depth"] = depth
                results["flood_1x"] = _phase_record(flood1, cap_used)
                results["flood_3x"] = _phase_record(flood3, 3.0 * cap_used)

                # -- contract: admitted work is bit-exact, always ------
                for tally in (flood1, flood3):
                    assert tally["mismatches"] == 0
                    assert tally["errors"] == 0

                # -- contract: the books balance exactly ---------------
                for tally in (flood1, flood3):
                    assert tally["offered"] == (
                        tally["completed"] + tally["queue_full"]
                        + tally["quota"] + tally["expired"]
                    )
                snap = handle.telemetry.snapshot()
                adm = snap["admission"]
                assert snap["arrivals"] == (
                    snap["requests"] + adm["sheds"]
                    + adm["quota_rejections"] + adm["expired"]
                )
                shed_events = recorder.events("request_shed")
                assert len(shed_events) == (
                    adm["sheds"] + adm["quota_rejections"] + adm["expired"]
                )
                assert service.admission.outstanding == 0

                # -- contract: overload actually shed, quotas bit ------
                shed3 = (
                    flood3["queue_full"] + flood3["quota"] + flood3["expired"]
                )
                assert shed3 > 0
                assert flood3["quota"] > 0  # greedy tenant was clipped

                # -- contract: shed work fails fast, nothing hangs -----
                for tally in (flood1, flood3):
                    assert all(
                        lat < SHED_FAST_S for lat in tally["shed_latency"]
                    )
                    assert all(
                        lat < DEADLINE_S + 1.0
                        for lat in tally["expired_latency"]
                    )
                    assert (
                        _percentile(tally["ok_latency"], 99)
                        < DEADLINE_S + 1.0
                    )

                # -- contract: goodput holds through the 3x kill -------
                goodput3 = flood3["completed"] / flood3["busy_span_s"]
                assert goodput3 >= GOODPUT_FLOOR * cap_used

                # -- the kill really degraded host 0 to fallback -------
                shard0 = handle.sharded._remotes[0]
                assert shard0.local_fallbacks > 0 or not shard0.healthy

                results["shed_events_recorded"] = len(shed_events)
                results["telemetry"] = {
                    "arrivals": snap["arrivals"],
                    "requests": snap["requests"],
                    "sheds": adm["sheds"],
                    "quota_rejections": adm["quota_rejections"],
                    "expired": adm["expired"],
                    "per_tenant": adm["per_tenant"],
                }
                results["chaos"] = [p.stats() for p in proxies]
        finally:
            for proxy in proxies:
                proxy.stop()

    out = REPO_ROOT / "BENCH_overload_shedding.json"
    out.write_text(json.dumps(results, indent=2, sort_keys=True))
    print(json.dumps(results["flood_3x"], indent=2))
