"""Cluster dispatch benchmark: a loopback shard fleet vs the monolith.

A 96x96 CSD-recoded matrix is served two ways against the same offered
load — 64 concurrent single-vector requests, micro-batched by the
service:

* **monolith** — one in-process deployment (thread backend, 1 shard),
  the repository's standard serving path;
* **fleet** — three :class:`~repro.cluster.server.ShardServer`
  instances on loopback TCP, one column shard each, deployed via
  :meth:`ClusterController.deploy_fleet` after the store was prewarmed
  by the :mod:`repro.serve.prewarm` compile farm.

Two contracts are *asserted* (the numbers are recorded for the curious
— loopback sockets obviously tax a matrix this small; the fleet's value
is matrices wider than one host, not speed at 96 columns):

* **bit-exactness** — fleet results equal the monolith's equal
  ``vectors @ matrix``, through the full micro-batching path;
* **zero-stage warm start** — deploying onto the prewarmed store
  executes zero ``plan``/``build``/``lower``/``fuse`` stages anywhere
  in the process (deploying client *and* all three servers), proven by
  :data:`repro.core.stages.STAGES` counters, not timings.

Results are written to ``BENCH_cluster_dispatch.json`` at the repo root.

Run::

    pytest benchmarks/bench_cluster_dispatch.py
"""

import asyncio
import json
import pathlib
import time

import numpy as np

from repro.core.stages import STAGES
from repro.cluster import ClusterController
from repro.serve import CompileCache, MatMulService
from repro.serve.prewarm import prewarm

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DIM = 96
SPARSITY = 0.5
SERVERS = 3
OFFERED = 64
REPEATS = 3


def _matrix():
    rng = np.random.default_rng(23)
    matrix = rng.integers(-128, 128, size=(DIM, DIM))
    matrix[rng.random((DIM, DIM)) < SPARSITY] = 0
    return matrix


def _offered_load(service, handle, vectors):
    """One offered batch of single-vector requests; returns (rows, s)."""

    async def drive():
        start = time.perf_counter()
        rows = await service.submit_many(handle, vectors)
        return rows, time.perf_counter() - start

    return asyncio.run(drive())


def _best_offered(service, handle, vectors, golden):
    best = float("inf")
    for _ in range(REPEATS):
        rows, elapsed = _offered_load(service, handle, vectors)
        assert np.array_equal(rows, golden)  # bit-exact, every repeat
        best = min(best, elapsed)
    return best


def test_cluster_dispatch(tmp_path):
    matrix = _matrix()
    vectors = np.random.default_rng(29).integers(-128, 128, size=(OFFERED, DIM))
    golden = vectors @ matrix
    store = tmp_path / "store"

    # Stage 1: the offline compile farm fills the store — the monolith
    # key plus each of the three fleet shard pieces.
    manifest = {
        "defaults": {"input_width": 8, "scheme": "csd"},
        "workloads": [
            {"name": "monolith", "matrix": matrix.tolist()},
            {"name": "fleet", "matrix": matrix.tolist(), "shards": SERVERS},
        ],
    }
    prewarm_report = prewarm(manifest, store=store)
    assert prewarm_report["stages"]["plan"] == SERVERS + 1

    # Stage 2: everything below runs against the warm store and must
    # execute zero pipeline stages — client side and server side.
    before = STAGES.snapshot()

    with ClusterController(store) as controller:
        controller.start_local_fleet(SERVERS)
        with controller.remote_service() as fleet_service:
            fleet_handle = controller.deploy_fleet(fleet_service, matrix)
            fleet_s = _best_offered(fleet_service, fleet_handle, vectors, golden)
            fleet_util = fleet_handle.sharded.utilization()
            fleet_stats = controller.fleet_stats()

        with MatMulService(cache=CompileCache(directory=store)) as mono_service:
            mono_handle = mono_service.deploy(matrix, input_width=8, scheme="csd")
            mono_s = _best_offered(mono_service, mono_handle, vectors, golden)

    stage_delta = STAGES.delta(before)
    for stage in ("plan", "build", "lower", "fuse"):
        assert stage_delta.get(stage, 0) == 0, (stage, stage_delta)
    # Every shard server answered a LOAD from the shared store and
    # every batch went over a socket — no silent local fallbacks.
    assert [s["loads"] for s in fleet_stats] == [1] * SERVERS
    assert all(
        p["healthy"] and p["local_fallbacks"] == 0
        for p in fleet_util["per_shard"]
    )

    record = {
        "matrix": f"{DIM}x{DIM} csd, ~{SPARSITY:.0%} element sparsity, s8 inputs",
        "offered_batch": OFFERED,
        "servers": SERVERS,
        "seconds": {
            "fleet_remote": round(fleet_s, 6),
            "monolith_in_process": round(mono_s, 6),
        },
        "requests_per_s": {
            "fleet_remote": round(OFFERED / fleet_s, 1),
            "monolith_in_process": round(OFFERED / mono_s, 1),
        },
        "remote_overhead_x": round(fleet_s / mono_s, 2),
        "stage_counts_after_prewarm": stage_delta,
        "prewarm_stage_counts": prewarm_report["stages"],
        "per_shard": [
            {
                "endpoint": p["endpoint"],
                "columns": p["columns"],
                "remote_calls": p["remote_calls"],
                "rtt_s": p["rtt_s"],
            }
            for p in fleet_util["per_shard"]
        ],
        "server_loads": [s["loads"] for s in fleet_stats],
        "bit_exact": True,
    }
    out_path = REPO_ROOT / "BENCH_cluster_dispatch.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))
