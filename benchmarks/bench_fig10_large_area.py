"""Fig. 10: large-scale area — FPGA resources vs matrix ones.

Paper shape: "The very strong linear relationship between matrix ones and
FPGA resources is obvious.  LUTs are essentially equivalent to the number
of ones, and there are two registers per LUT.  CSD reduces both the number
of ones in the matrix and the resulting resource counts."
"""

from conftest import run_once

from repro.bench.experiments import fig10_large_area
from repro.bench.shapes import linear_fit_r_squared


def test_fig10_large_area(benchmark, record_result):
    result = record_result(run_once(benchmark, fig10_large_area))
    ones = result.column("ones")
    luts = result.column("lut")
    ffs = result.column("ff")
    # Strong linear relationship across the whole sweep.
    assert linear_fit_r_squared(ones, luts) > 0.999
    assert linear_fit_r_squared(ones, ffs) > 0.99
    for row in result.rows:
        # LUTs essentially equal to ones.
        assert abs(row["lut"] - row["ones"]) / row["ones"] < 0.05
        # Two registers per LUT (alignment flops push the sparsest points up).
        assert 1.8 < row["ff"] / row["lut"] < 3.0
    # Aggregate over the sweep, the ratio is ~2 as the paper states.
    total_ffs = sum(result.column("ff"))
    total_luts = sum(result.column("lut"))
    assert 1.9 < total_ffs / total_luts < 2.3
    # CSD strictly reduces ones for every (dim, sparsity) pair.
    by_config = {}
    for row in result.rows:
        by_config.setdefault(
            (row["dim"], row["element_sparsity_pct"]), {}
        )[row["scheme"]] = row["ones"]
    for config, schemes in by_config.items():
        assert schemes["csd"] < schemes["pn"], config
    # The paper's largest design: ~1.5M ones at 1024/60%, still fitting.
    largest = max(result.rows, key=lambda r: r["ones"])
    assert largest["dim"] == 1024
    assert 1_300_000 < largest["ones"] < 1_700_000
    assert largest["fits"]
