"""Design inspection tour: every lens the library offers on one matrix.

Compile a small matrix and inspect it the way a hardware engineer would:

1. ASCII structure of a column (trees, chain, subtract stage);
2. a Vivado-style utilization/timing/power report;
3. a VCD waveform dump for GTKWave;
4. plan serialization for build caching;
5. a stuck-at fault to prove the checks have teeth.

Run:  python examples/design_inspection.py
"""

import json
import pathlib

from repro.core import FixedMatrixMultiplier, plan_to_dict, render_column
from repro.hwsim import build_circuit, dump_vcd, inject_stuck_output
from repro.workloads import element_sparse_matrix, random_input_vector, rng_from_seed

OUT_DIR = pathlib.Path(__file__).parent / "out"


def main() -> None:
    rng = rng_from_seed(4)
    matrix = element_sparse_matrix(6, 4, width=5, element_sparsity=0.4, rng=rng)
    mult = FixedMatrixMultiplier(matrix, input_width=6, scheme="csd", rng=rng)

    print("=== column structure ===")
    print(render_column(mult.plan, 0))
    print()

    print("=== synthesis-style report ===")
    print(mult.utilization_report())
    print()

    OUT_DIR.mkdir(exist_ok=True)
    circuit = build_circuit(mult.plan)
    vector = random_input_vector(6, width=6, rng=rng)
    vcd_path = OUT_DIR / "inspection.vcd"
    dump_vcd(circuit, vector, path=vcd_path)
    print(f"=== waveforms ===\nwrote {vcd_path} (open with GTKWave)")

    plan_path = OUT_DIR / "inspection_plan.json"
    plan_path.write_text(json.dumps(plan_to_dict(mult.plan)))
    print(f"wrote {plan_path} (reload with repro.core.plan_from_dict)")
    print()

    print("=== fault check ===")
    golden = circuit.multiply(vector)
    victim = next(c for c in circuit.netlist.components if type(c).__name__ == "SerialAdder")
    injection = inject_stuck_output(circuit.netlist, victim, 1)
    corrupted = circuit.multiply(vector)
    injection.revert()
    print(f"golden:    {golden.tolist()}")
    print(f"with {victim.name} stuck at 1: {corrupted.tolist()}")
    print("the bit-exact cross-check catches the defect immediately.")


if __name__ == "__main__":
    main()
