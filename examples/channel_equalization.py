"""Nonlinear channel equalization with a reservoir (paper reference [3]).

Antonik et al. built exactly this on an FPGA: a reservoir equalizing a
nonlinear multipath communication channel, "ideal for online learning
because the known patterns with expected results are presented on a
periodic basis".  This example trains the readout on a pilot sequence and
reports the symbol error rate on held-out data, then shows what the
reservoir's recurrent product costs on the spatial architecture.

Run:  python examples/channel_equalization.py
"""

import numpy as np

from repro.core import FixedMatrixMultiplier
from repro.reservoir import (
    EchoStateNetwork,
    RidgeReadout,
    channel_equalization,
    quantize_weights,
    random_input_weights,
    random_reservoir,
    symbol_error_rate,
)


def main() -> None:
    rng = np.random.default_rng(7)
    dim = 150

    print(f"reservoir: {dim} neurons, 75% sparse, spectral radius 0.9")
    w = random_reservoir(dim, element_sparsity=0.75, rng=rng)
    w_in = random_input_weights(dim, 1, scale=1.0, rng=rng)
    esn = EchoStateNetwork(w, w_in)

    for snr_db in (28.0, 24.0, 20.0, 16.0):
        data = channel_equalization(8000, snr_db=snr_db, rng=np.random.default_rng(1))
        washout = 100
        states = esn.run(data.inputs, washout=washout)
        targets = data.targets[washout:]
        cut = int(len(states) * 0.6)
        readout = RidgeReadout(alpha=1e-4).fit(states[:cut], targets[:cut])
        predictions = readout.predict(states[cut:])
        ser = symbol_error_rate(predictions, targets[cut:])
        print(f"  SNR {snr_db:>4.0f} dB -> symbol error rate {ser:.4f}")

    # Deployment cost of the fixed recurrent matrix on the XCVU13P.
    w_q, __ = quantize_weights(w, 8)
    mult = FixedMatrixMultiplier(w_q.T, input_width=8, scheme="csd", rng=rng)
    print()
    print("fixed recurrent matrix on the spatial architecture:")
    print(mult.summary())
    print(
        f"\nequalizer state update every {mult.latency_ns():.0f} ns -> "
        f"{1e3 / mult.latency_ns():.1f} Msymbol/s sustained equalization rate"
    )


if __name__ == "__main__":
    main()
