"""All-hardware reservoir inference: Eq. 1 *and* Eq. 2 on the architecture.

The paper accelerates the recurrent product; after training, the readout
matrix W_out is just as fixed, so the whole inference path can live on the
spatial architecture — and both stages are *served* here through
:class:`repro.serve.MatMulService` (content-addressed compile cache,
column shards, bit-plane gate engine) instead of per-vector loops:

1. quantize a trained reservoir and deploy the *augmented* matrix
   [Wᵀ ; W_inᵀ] — one hardware product computes the entire pre-activation,
   and the rollout runs cycle-accurately via ``service.run_stream``;
2. train the ridge readout on harvested states;
3. quantize W_out, deploy it too, and compute every test prediction with
   micro-batched bit-plane products (``service.submit_many`` coalesces
   the whole test set into 64-lane calls);
4. run Mackey-Glass prediction with every matrix product in hardware and
   compare against the float pipeline.

Run:  python examples/full_hardware_inference.py
"""

import asyncio

import numpy as np

from repro.reservoir import (
    HardwareReadout,
    RidgeReadout,
    mackey_glass,
    nrmse,
    quantize_esn,
    random_input_weights,
    random_reservoir,
)
from repro.serve import MatMulService


def main() -> None:
    rng = np.random.default_rng(5)
    dim = 120

    w = random_reservoir(dim, element_sparsity=0.8, rng=rng)
    w_in = random_input_weights(dim, 1, scale=1.0, rng=rng)
    esn = quantize_esn(w, w_in, weight_width=8, state_width=10)

    service = MatMulService()

    # Stage 1: the reservoir, with the input matrix folded into the same
    # spatial array (augmented-matrix compilation), deployed as a served
    # multiplier; the rollout's recurrent products run on the gates.
    reservoir = service.deploy_esn(esn, include_input=True, scheme="csd")
    hw = reservoir.esn
    print("reservoir stage:")
    print(f"  augmented matrix {hw.multiplier.rows}x{hw.multiplier.cols} "
          f"-> {hw.multiplier.resources.luts} LUTs, "
          f"{hw.multiplier.latency_ns():.0f} ns/update")

    data = mackey_glass(3000)
    u_q = esn.quantize_inputs(data.inputs / np.max(np.abs(data.inputs)))
    washout = 100
    states = service.run_stream(reservoir, u_q, washout=washout)
    targets = data.targets[washout:]
    cut = int(len(states) * 0.7)

    readout = RidgeReadout(alpha=1e-6).fit(states[:cut].astype(float), targets[:cut])

    # Stage 2: the trained readout, compiled and served as well.  The
    # whole test set goes through micro-batched bit-plane products
    # instead of a per-vector loop; states are s10, so the served
    # circuit streams 10-bit inputs.
    hw_readout = HardwareReadout(readout, weight_width=12, scheme="csd")
    print("readout stage:")
    print(f"  W_out {hw_readout.multiplier.rows}x{hw_readout.multiplier.cols} "
          f"-> {hw_readout.multiplier.resources.luts} LUTs, "
          f"{hw_readout.multiplier.latency_ns():.0f} ns/output")

    readout_handle = service.deploy(
        hw_readout.w_out_q.T, input_width=esn.state_width, scheme="csd"
    )
    raw = asyncio.run(service.submit_many(readout_handle, states[cut:]))
    hw_pred = hw_readout.dequantize(raw)
    float_pred = readout.predict(states[cut:].astype(float))

    print()
    print(f"Mackey-Glass test NRMSE (hardware path): {nrmse(hw_pred, targets[cut:]):.4f}")
    print(f"Mackey-Glass test NRMSE (float readout): {nrmse(float_pred, targets[cut:]):.4f}")
    gap = np.abs(hw_pred - float_pred).max()
    print(f"max hardware-vs-float prediction gap:    {gap:.5f} "
          f"(bound {hw_readout.quantization_error_bound(2 ** 9):.5f})")

    total_ns = hw.multiplier.latency_ns() + hw_readout.multiplier.latency_ns()
    print(f"\nend-to-end inference step (reservoir + readout): {total_ns:.0f} ns "
          f"= {1e3 / total_ns:.1f} M inferences/second")
    service.close()


if __name__ == "__main__":
    main()
