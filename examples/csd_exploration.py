"""How much does Canonical Signed Digit recoding save?

Sec. V of the paper measures ~17% LUT savings from CSD on uniform 8-bit
weights and expects "these savings to improve for larger weight
bitwidths".  This example quantifies both claims — per-bitwidth ones
savings from the paper's Listing 1, compared against the optimal
non-adjacent form — and shows the effect on a compiled design.

Run:  python examples/csd_exploration.py
"""

import numpy as np

from repro.bench.harness import format_table
from repro.core import FixedMatrixMultiplier, convert_to_naf, csd_value
from repro.core.bits import popcount
from repro.workloads import element_sparse_matrix, rng_from_seed


def average_weights(width: int, rng: np.random.Generator) -> dict:
    """Average set-bit counts over uniform values of one bitwidth."""
    values = rng.integers(0, 1 << width, size=4000)
    plain = np.mean([popcount(int(v)) for v in values])
    listing1 = np.mean(
        [sum(map(popcount, csd_value(int(v), width, rng))) for v in values]
    )
    naf = np.mean(
        [sum(1 for d in convert_to_naf(int(v), width) if d) for v in values]
    )
    return {
        "bitwidth": width,
        "plain_bits": round(plain, 2),
        "listing1_bits": round(listing1, 2),
        "naf_bits": round(naf, 2),
        "listing1_saving": f"{1 - listing1 / plain:.1%}",
        "naf_saving": f"{1 - naf / plain:.1%}",
    }


def main() -> None:
    rng = rng_from_seed(0)
    rows = [average_weights(width, rng) for width in (4, 6, 8, 12, 16, 24, 32)]
    print("average set bits per weight (uniform values)")
    print(format_table(rows))
    print()
    print("savings grow with bitwidth, as Sec. V predicts; the paper's")
    print("Listing 1 recoder sits close to the provably-minimal NAF.")
    print()

    matrix = element_sparse_matrix(64, 64, width=8, element_sparsity=0.5, rng=rng)
    pn = FixedMatrixMultiplier(matrix, scheme="pn")
    csd = FixedMatrixMultiplier(matrix, scheme="csd", rng=rng)
    saving = 1 - csd.resources.luts / pn.resources.luts
    print(
        f"compiled 64x64 @50% sparse: PN {pn.resources.luts} LUTs -> "
        f"CSD {csd.resources.luts} LUTs ({saving:.1%} saved)"
    )


if __name__ == "__main__":
    main()
