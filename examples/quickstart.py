"""Quickstart: compile a fixed sparse matrix to the spatial architecture.

This walks the library's core loop in under a minute:

1. generate a random sparse signed matrix (the paper's workload);
2. compile it with CSD recoding;
3. multiply a vector three ways — exact math, the *served* cycle-accurate
   gate simulation (deployed through :class:`repro.serve.MatMulService`,
   which compiles through a content-addressed cache and executes on the
   default bit-plane engine), and the deployment cost/latency models;
4. print the full resource/timing/power summary.

Run:  python examples/quickstart.py
"""

import asyncio

import numpy as np

from repro import FixedMatrixMultiplier
from repro.serve import MatMulService
from repro.workloads import element_sparse_matrix, random_input_vector, rng_from_seed


def main() -> None:
    rng = rng_from_seed(0)

    # A 64x64 signed 8-bit matrix at 90% element sparsity: the kind of
    # fixed reservoir block the paper compiles into hardware.
    matrix = element_sparse_matrix(64, 64, width=8, element_sparsity=0.90, rng=rng)
    mult = FixedMatrixMultiplier(matrix, input_width=8, scheme="csd", rng=rng)

    print(mult.summary())
    print()

    vector = random_input_vector(64, width=8, rng=rng)

    exact = mult.multiply(vector)
    # The served gate-level path: deploy once (repeat deploys hit the
    # compile cache), submit vectors; the micro-batcher coalesces
    # requests into bit-plane lane-packed cycle-accurate executions.
    with MatMulService() as service:
        handle = service.deploy(matrix, input_width=8, scheme="csd")
        simulated = asyncio.run(service.submit(handle, vector))
    assert np.array_equal(exact, simulated), "gate-level sim must be bit-exact"

    print(f"input vector head:    {vector[:6]}")
    print(f"product head (exact): {exact[:6]}")
    print(f"product head (gates): {simulated[:6]}")
    print()
    print(
        f"one product takes {mult.latency_cycles()} cycles "
        f"= {mult.latency_ns():.1f} ns at {mult.fmax_hz() / 1e6:.0f} MHz"
    )
    print(f"gate-level and exact results agree on all {mult.cols} outputs.")


if __name__ == "__main__":
    main()
