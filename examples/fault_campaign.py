"""Fault-injection campaign over a compiled multiplier.

Verification-side companion to the compiler: inject stuck-at faults into
every primitive of a compiled circuit and measure how many a small random
stimulus set exposes.  Because culling removes every gate that does not
contribute to an output, coverage is high with very few vectors — the
architecture carries no dead logic.

Campaigns can also run *through the serving stack*: pass a
`MatMulService` and the sweep deploys the matrix (optionally
column-sharded), injects faults per shard, and evaluates every fault
via the same shard executor and telemetry production traffic uses.

Run:  python examples/fault_campaign.py
"""

from repro.core.plan import plan_matrix
from repro.hwsim import build_circuit
from repro.hwsim.faults import fault_campaign
from repro.serve import MatMulService
from repro.workloads import element_sparse_matrix, random_input_batch, rng_from_seed


def main() -> None:
    rng = rng_from_seed(9)
    matrix = element_sparse_matrix(12, 8, width=6, element_sparsity=0.4, rng=rng)
    plan = plan_matrix(matrix, input_width=6, scheme="csd", rng=rng)
    circuit = build_circuit(plan)
    print(
        f"compiled 12x8 matrix: {len(circuit.netlist)} components, "
        f"decode delta {circuit.decode_delta}"
    )

    for num_vectors in (1, 2, 4, 8):
        vectors = random_input_batch(num_vectors, 12, width=6, rng=rng_from_seed(1))
        report = fault_campaign(circuit, vectors)
        print(
            f"  {num_vectors} stimulus vector(s): "
            f"{report['detected']}/{report['injected']} stuck-at-1 faults "
            f"detected ({report['coverage']:.1%} coverage)"
        )

    print("\ncoverage saturates quickly: every surviving gate feeds an output.")

    # The same sweep, served: two column shards evaluated concurrently,
    # every fault evaluation a MatMulService hardware call.
    vectors = random_input_batch(8, 12, width=6, rng=rng_from_seed(1))
    with MatMulService() as service:
        report = fault_campaign(circuit, vectors, service=service, shards=2)
        snapshot = report["telemetry"]
    print(
        f"\nserved campaign ({report['shards']} shards): "
        f"{report['detected']}/{report['injected']} faults detected "
        f"({report['coverage']:.1%} coverage); the service recorded "
        f"{snapshot['batches']} hardware batches across "
        f"{snapshot['shards']['shards']} shards."
    )


if __name__ == "__main__":
    main()
