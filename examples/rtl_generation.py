"""Generate synthesizable SystemVerilog plus a self-checking testbench.

This is the paper's actual design flow: the matrix contents are compiled
into RTL ("We coded our design in SystemVerilog and ran synthesis in
Xilinx Vivado 2020.2").  The emitted module and testbench land in
``examples/out/`` and can be handed to any SystemVerilog simulator or to
Vivado; the testbench self-checks against golden integer results.

The example also executes the emitted RTL with the library's built-in
interpreter to prove the text is functionally correct before you ever
leave Python.

Run:  python examples/rtl_generation.py
"""

import pathlib

import numpy as np

from repro.core.bits import from_twos_complement_bits, sign_extended_stream
from repro.core.plan import plan_matrix
from repro.hwsim import build_circuit
from repro.rtl import emit_testbench, emit_verilog_from_circuit
from repro.rtl.interp import parse_module
from repro.workloads import element_sparse_matrix, random_input_batch, rng_from_seed

OUT_DIR = pathlib.Path(__file__).parent / "out"


def main() -> None:
    rng = rng_from_seed(3)
    matrix = element_sparse_matrix(8, 8, width=6, element_sparsity=0.5, rng=rng)
    plan = plan_matrix(matrix, input_width=6, scheme="csd", rng=rng)
    circuit = build_circuit(plan)

    verilog = emit_verilog_from_circuit(circuit, "sparse_mult8")
    vectors = random_input_batch(4, 8, width=6, rng=rng)
    testbench = emit_testbench(plan, vectors, module_name="sparse_mult8")

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "sparse_mult8.sv").write_text(verilog)
    (OUT_DIR / "sparse_mult8_tb.sv").write_text(testbench)
    print(f"wrote {OUT_DIR / 'sparse_mult8.sv'} ({len(verilog.splitlines())} lines)")
    print(f"wrote {OUT_DIR / 'sparse_mult8_tb.sv'} ({len(testbench.splitlines())} lines)")

    # Execute the emitted text with RTL semantics and check one vector.
    module = parse_module(verilog)
    vector = vectors[0]
    golden = vector @ matrix
    streams = [sign_extended_stream(int(v), 6, circuit.run_cycles) for v in vector]
    outs = []
    for cycle in range(circuit.run_cycles):
        module.clock([streams[r][cycle] for r in range(8)])
        outs.append(module.out_bits())
    delta = circuit.decode_delta - 1
    width = plan.result_width
    decoded = np.array(
        [
            from_twos_complement_bits([outs[delta + k][j] for k in range(width)])
            for j in range(8)
        ]
    )
    assert np.array_equal(decoded, golden)
    print(f"emitted RTL verified against golden math: {decoded.tolist()}")
    print("hand sparse_mult8_tb.sv to any SV simulator for the full batch check.")


if __name__ == "__main__":
    main()
