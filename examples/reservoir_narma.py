"""NARMA-10 system identification with a hardware-compiled reservoir.

The paper's end-to-end story: a fixed random sparse reservoir, quantized
to integers (Kleyko et al.), compiled to the spatial bit-serial
architecture, and driven through the classic NARMA-10 task with every
recurrent product produced by the compiled multiplier.  Only the linear
readout is trained.

Run:  python examples/reservoir_narma.py
"""

import numpy as np

from repro.reservoir import (
    HardwareESN,
    RidgeReadout,
    narma10,
    nrmse,
    quantize_esn,
    random_input_weights,
    random_reservoir,
)


def main() -> None:
    rng = np.random.default_rng(42)
    dim = 200
    sparsity = 0.80

    print(f"building a {dim}-neuron reservoir at {sparsity:.0%} element sparsity")
    w = random_reservoir(dim, element_sparsity=sparsity, rng=rng)
    w_in = random_input_weights(dim, 1, rng=rng)
    esn = quantize_esn(w, w_in, weight_width=6, state_width=8)

    hw = HardwareESN(esn, scheme="csd", backend="functional")
    mult = hw.multiplier
    print(
        f"compiled recurrent matrix: {mult.ones} ones -> {mult.resources.luts} LUTs, "
        f"{mult.fmax_hz() / 1e6:.0f} MHz, {mult.latency_ns():.0f} ns per state update"
    )

    data = narma10(3000, np.random.default_rng(0))
    u_q = esn.quantize_inputs(2.0 * data.inputs - 0.5)

    washout = 100
    print("harvesting reservoir states (every gemv on the compiled multiplier)...")
    states = hw.run(u_q, washout=washout).astype(float)
    targets = data.targets[washout:]

    cut = int(len(states) * 0.7)
    readout = RidgeReadout(alpha=1e-4).fit(states[:cut], targets[:cut])
    predictions = readout.predict(states[cut:])
    error = nrmse(predictions, targets[cut:])

    print(f"NARMA-10 test NRMSE: {error:.3f}  (mean predictor = 1.0)")

    # Sanity: hardware states are bit-identical to the software integer ESN.
    sw_states = esn.run(u_q, washout=washout).astype(float)
    assert np.array_equal(states, sw_states)
    print("hardware and software reservoir trajectories are bit-identical.")

    steps_per_second = 1.0 / hw.step_latency_s()
    print(
        f"modelled hardware throughput: {steps_per_second / 1e6:.1f} M reservoir "
        "updates/second"
    )


if __name__ == "__main__":
    main()
