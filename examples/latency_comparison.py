"""Latency shoot-out: spatial FPGA vs V100 kernels vs SIGMA.

A compact version of the paper's Sec. VII evaluation: for a sweep of
matrix dimensions at 98% element sparsity, print the modelled latency of
every system and the FPGA's speedup — the reproduction of Figs. 13/14 and
19/20 in one table.

Run:  python examples/latency_comparison.py
"""

from repro.baselines import CUSPARSE, OPTIMIZED_KERNEL, SigmaSimulator
from repro.bench import evaluation_design_point
from repro.bench.harness import format_table


def main() -> None:
    sparsity = 0.98
    sigma = SigmaSimulator()
    rows = []
    print("compiling design points (the 2048 case takes a few seconds)...")
    for dim in (64, 128, 256, 512, 1024, 2048):
        point = evaluation_design_point(dim, sparsity, "csd")
        nnz = int(round(dim * dim * (1.0 - sparsity)))
        fpga_s = point.latency_s
        cusparse_s = CUSPARSE.gemv_latency_s(dim, 1.0 - sparsity)
        optimized_s = OPTIMIZED_KERNEL.gemv_latency_s(dim, 1.0 - sparsity)
        sigma_s = sigma.latency_s(dim, nnz)
        rows.append(
            {
                "dim": dim,
                "fpga_ns": round(fpga_s * 1e9, 1),
                "fmax_mhz": round(point.fmax_hz / 1e6),
                "cusparse_us": round(cusparse_s * 1e6, 2),
                "optimized_us": round(optimized_s * 1e6, 2),
                "sigma_ns": round(sigma_s * 1e9),
                "vs_cusparse": f"{cusparse_s / fpga_s:.0f}x",
                "vs_optimized": f"{optimized_s / fpga_s:.0f}x",
                "vs_sigma": f"{sigma_s / fpga_s:.1f}x",
            }
        )
    print()
    print(f"single gemv latency, {sparsity:.0%} element sparse, signed 8-bit")
    print(format_table(rows))
    print()
    print("the FPGA stays in nanoseconds; the GPU cannot break the 1 us barrier.")


if __name__ == "__main__":
    main()
